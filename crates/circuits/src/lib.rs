#![warn(missing_docs)]
//! # analog-circuits — analytical models for analog design space exploration
//!
//! A from-scratch analytical modeling substrate for the circuit evaluated in
//! the reproduced DATE 2005 paper: a **CDS offset-compensated
//! switched-capacitor integrator** built around a standard two-stage Miller
//! op-amp in a synthetic (but physically plausible) 0.18 µm, 1.8 V CMOS
//! process.
//!
//! The stack, bottom-up:
//!
//! * [`process`] — process parameters and manufacturing corners
//!   (TT/FF/SS/FS/SF) plus deterministic mismatch sampling;
//! * [`mosfet`] — the deep-submicron MOSFET drain-current model of the
//!   paper's eqn (1): square-law core with velocity saturation
//!   (`E_sat·L`), channel-length modulation (λ) and advanced mobility
//!   degradation (θ₁, θ₂, V_K), with small-signal parameters and parasitic
//!   capacitances;
//! * [`capacitor`] — integrated capacitors with bottom-plate parasitics;
//! * [`opamp`] — DC + small-signal analysis of the two-stage Miller op-amp
//!   (gain, GBW, non-dominant pole, RHP zero, slew rates, swing, noise,
//!   power, area, operating-region checks);
//! * [`integrator`] — switched-capacitor integrator performance equations:
//!   Dynamic Range, Settling Time, Settling Error, Output Range, Area,
//!   Power — including the effect of the non-dominant pole and zero as the
//!   paper requires;
//! * [`sizing`] — the 15-parameter design vector and its gene mapping;
//! * [`yield_est`] — corner/mismatch robustness ("yield") estimation;
//! * [`specs`] — the featured specification and the 20 graded
//!   specifications of the paper;
//! * [`problem`] — the [`moea::Problem`] implementation: minimize power,
//!   maximize drivable load capacitance, under the full constraint set;
//! * [`batch`] — struct-of-arrays generation decoding behind the
//!   bit-identical `Problem::evaluate_all` fast paths;
//! * [`surrogate`] — the opt-in analytic pre-screen that answers obvious
//!   losers before the full model runs.
//!
//! All quantities are SI (volts, amperes, farads, seconds, meters) unless a
//! name says otherwise.
//!
//! ## Example
//!
//! ```
//! use analog_circuits::problem::IntegratorProblem;
//! use analog_circuits::specs::Spec;
//! use moea::Problem;
//!
//! let problem = IntegratorProblem::new(Spec::featured());
//! assert_eq!(problem.num_variables(), 15);
//! let mid = vec![0.5; 15];
//! let ev = problem.evaluate(&mid);
//! assert_eq!(ev.objectives().len(), 2);
//! ```

pub mod batch;
pub mod capacitor;
pub mod drivable;
pub mod frequency;
pub mod integrator;
pub mod mosfet;
pub mod opamp;
pub mod problem;
pub mod process;
pub mod sigma_delta;
pub mod sizing;
pub mod specs;
pub mod surrogate;
pub mod transient;
pub mod yield_est;

pub use drivable::DrivableLoadProblem;
pub use problem::IntegratorProblem;
pub use sizing::DesignVector;
pub use specs::Spec;

/// Boltzmann constant (J/K).
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Nominal analysis temperature (K).
pub const T_NOMINAL: f64 = 300.0;

/// `kT` at the nominal temperature (J).
pub const KT: f64 = BOLTZMANN * T_NOMINAL;
