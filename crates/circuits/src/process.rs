//! Synthetic 0.18 µm, 1.8 V CMOS process description with manufacturing
//! corners and deterministic mismatch sampling.
//!
//! The reproduced paper targets "an industry-standard 0.18 µm, 1.8 V,
//! n-well digital CMOS process" whose fitting parameters are proprietary.
//! This module substitutes a physically plausible parameter set (see
//! `DESIGN.md` §4): t_ox = 4.1 nm, V_T0 ≈ ±0.45 V, low-field mobilities of
//! 350 / 85 cm²/Vs, E_sat ≈ 4·10⁶ V/m (NMOS). The optimizer only observes
//! objective/constraint values, so any smooth model of this family
//! exercises the same search behaviour.

/// Device polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceType {
    /// N-channel MOSFET.
    Nmos,
    /// P-channel MOSFET.
    Pmos,
}

impl DeviceType {
    /// Exponent `n` of the paper's mobility-degradation term:
    /// 1 for NMOS, 2 for PMOS (eqn (1) of the paper).
    pub fn mobility_exponent(self) -> f64 {
        match self {
            DeviceType::Nmos => 1.0,
            DeviceType::Pmos => 2.0,
        }
    }
}

/// Per-polarity transistor model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransistorParams {
    /// Zero-bias threshold voltage magnitude (V).
    pub vt0: f64,
    /// Low-field mobility × C_ox, i.e. the process transconductance
    /// `k' = µ·C_ox` (A/V²).
    pub kp: f64,
    /// Velocity-saturation critical field (V/m).
    pub esat: f64,
    /// Channel-length modulation coefficient at L = 1 µm (V⁻¹); the
    /// effective λ scales as `lambda / (L / 1 µm)`.
    pub lambda: f64,
    /// First mobility-degradation fitting parameter θ₁ (1/V).
    pub theta1: f64,
    /// Second mobility-degradation fitting parameter θ₂ (1/Vⁿ).
    pub theta2: f64,
    /// Mobility-degradation knee voltage V_K (V).
    pub vk: f64,
    /// Gate-drain/source overlap capacitance per width (F/m).
    pub c_overlap: f64,
    /// Drain/source junction capacitance per area (F/m²).
    pub cj: f64,
    /// Drain/source sidewall junction capacitance per perimeter (F/m).
    pub cjsw: f64,
    /// Drain/source diffusion length (m).
    pub l_diff: f64,
}

/// Full process description used by every analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Process {
    /// Supply voltage (V).
    pub vdd: f64,
    /// Gate-oxide capacitance per area (F/m²).
    pub cox: f64,
    /// NMOS parameters.
    pub nmos: TransistorParams,
    /// PMOS parameters.
    pub pmos: TransistorParams,
    /// Integrated (MiM) capacitor density (F/m²).
    pub cap_density: f64,
    /// Bottom-plate parasitic as a fraction of the main capacitance.
    pub bottom_plate_fraction: f64,
    /// Minimum drawn channel length (m).
    pub l_min: f64,
}

impl Process {
    /// The nominal (typical-typical) synthetic 0.18 µm process.
    pub fn nominal() -> Self {
        // C_ox = eps_ox / t_ox = 3.45e-11 F/m / 4.1e-9 m ≈ 8.4 mF/m².
        let cox = 8.4e-3;
        Process {
            vdd: 1.8,
            cox,
            nmos: TransistorParams {
                vt0: 0.45,
                kp: 295e-6, // µ_n·C_ox ≈ 295 µA/V²
                esat: 4.0e6,
                lambda: 0.06,
                theta1: 0.25,
                theta2: 0.10,
                vk: 0.8,
                c_overlap: 3.5e-10,
                cj: 1.0e-3,
                cjsw: 2.0e-10,
                l_diff: 0.5e-6,
            },
            pmos: TransistorParams {
                vt0: 0.45,
                kp: 72e-6, // µ_p·C_ox ≈ 72 µA/V²
                esat: 1.0e7,
                lambda: 0.08,
                theta1: 0.30,
                theta2: 0.05,
                vk: 0.8,
                c_overlap: 3.5e-10,
                cj: 1.1e-3,
                cjsw: 2.2e-10,
                l_diff: 0.5e-6,
            },
            cap_density: 1.0e-3, // 1 fF/µm² MiM
            bottom_plate_fraction: 0.08,
            l_min: 0.18e-6,
        }
    }

    /// Parameters for a device polarity.
    pub fn transistor(&self, device: DeviceType) -> &TransistorParams {
        match device {
            DeviceType::Nmos => &self.nmos,
            DeviceType::Pmos => &self.pmos,
        }
    }

    /// Applies a manufacturing corner, returning the skewed process.
    pub fn at_corner(&self, corner: Corner) -> Process {
        let mut p = *self;
        let (n_skew, p_skew) = corner.skews();
        apply_skew(&mut p.nmos, n_skew);
        apply_skew(&mut p.pmos, p_skew);
        // Oxide / capacitor density track the overall corner speed.
        let cap_skew = 1.0 - 0.05 * (n_skew.speed + p_skew.speed);
        p.cap_density *= cap_skew;
        p
    }

    /// Applies an additional local-mismatch perturbation (used by yield
    /// estimation): threshold shifts in volts and a relative mobility
    /// change.
    pub fn with_mismatch(&self, dvt_n: f64, dvt_p: f64, dkp_rel: f64) -> Process {
        let mut p = *self;
        p.nmos.vt0 += dvt_n;
        p.pmos.vt0 += dvt_p;
        p.nmos.kp *= 1.0 + dkp_rel;
        p.pmos.kp *= 1.0 + dkp_rel;
        p
    }
}

impl Default for Process {
    fn default() -> Self {
        Process::nominal()
    }
}

/// One polarity's corner skew: `speed` ∈ {−1, 0, +1} for slow/typ/fast.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Skew {
    /// −1 = slow, 0 = typical, +1 = fast.
    pub speed: f64,
}

fn apply_skew(t: &mut TransistorParams, s: Skew) {
    // Fast: lower VT, higher mobility; slow: the reverse.
    t.vt0 -= 0.030 * s.speed;
    t.kp *= 1.0 + 0.10 * s.speed;
    t.lambda *= 1.0 + 0.05 * s.speed;
}

/// The five classic manufacturing corners.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Corner {
    /// Typical NMOS, typical PMOS.
    Tt,
    /// Fast NMOS, fast PMOS.
    Ff,
    /// Slow NMOS, slow PMOS.
    Ss,
    /// Fast NMOS, slow PMOS.
    Fs,
    /// Slow NMOS, fast PMOS.
    Sf,
}

impl Corner {
    /// All corners, TT first.
    pub const ALL: [Corner; 5] = [Corner::Tt, Corner::Ff, Corner::Ss, Corner::Fs, Corner::Sf];

    /// `(nmos_skew, pmos_skew)` for this corner.
    pub fn skews(self) -> (Skew, Skew) {
        let s = |v: f64| Skew { speed: v };
        match self {
            Corner::Tt => (s(0.0), s(0.0)),
            Corner::Ff => (s(1.0), s(1.0)),
            Corner::Ss => (s(-1.0), s(-1.0)),
            Corner::Fs => (s(1.0), s(-1.0)),
            Corner::Sf => (s(-1.0), s(1.0)),
        }
    }

    /// Short display name ("TT", "FF", …).
    pub fn name(self) -> &'static str {
        match self {
            Corner::Tt => "TT",
            Corner::Ff => "FF",
            Corner::Ss => "SS",
            Corner::Fs => "FS",
            Corner::Sf => "SF",
        }
    }
}

impl std::fmt::Display for Corner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_process_is_sane() {
        let p = Process::nominal();
        assert_eq!(p.vdd, 1.8);
        assert!(p.nmos.kp > p.pmos.kp, "NMOS must be stronger than PMOS");
        assert!(p.nmos.vt0 > 0.2 && p.nmos.vt0 < 0.7);
        assert!(p.l_min > 0.0);
    }

    #[test]
    fn ff_corner_is_faster() {
        let nom = Process::nominal();
        let ff = nom.at_corner(Corner::Ff);
        assert!(ff.nmos.vt0 < nom.nmos.vt0);
        assert!(ff.nmos.kp > nom.nmos.kp);
        assert!(ff.pmos.kp > nom.pmos.kp);
    }

    #[test]
    fn ss_corner_is_slower() {
        let nom = Process::nominal();
        let ss = nom.at_corner(Corner::Ss);
        assert!(ss.nmos.vt0 > nom.nmos.vt0);
        assert!(ss.nmos.kp < nom.nmos.kp);
    }

    #[test]
    fn cross_corners_skew_polarities_oppositely() {
        let nom = Process::nominal();
        let fs = nom.at_corner(Corner::Fs);
        assert!(fs.nmos.kp > nom.nmos.kp);
        assert!(fs.pmos.kp < nom.pmos.kp);
        let sf = nom.at_corner(Corner::Sf);
        assert!(sf.nmos.kp < nom.nmos.kp);
        assert!(sf.pmos.kp > nom.pmos.kp);
    }

    #[test]
    fn tt_corner_is_identity() {
        let nom = Process::nominal();
        let tt = nom.at_corner(Corner::Tt);
        assert_eq!(nom, tt);
    }

    #[test]
    fn mismatch_shifts_parameters() {
        let nom = Process::nominal();
        let m = nom.with_mismatch(0.01, -0.01, 0.05);
        assert!((m.nmos.vt0 - nom.nmos.vt0 - 0.01).abs() < 1e-12);
        assert!((m.pmos.vt0 - nom.pmos.vt0 + 0.01).abs() < 1e-12);
        assert!((m.nmos.kp / nom.nmos.kp - 1.05).abs() < 1e-12);
    }

    #[test]
    fn mobility_exponent_follows_paper() {
        assert_eq!(DeviceType::Nmos.mobility_exponent(), 1.0);
        assert_eq!(DeviceType::Pmos.mobility_exponent(), 2.0);
    }

    #[test]
    fn corner_display_names() {
        assert_eq!(Corner::Tt.to_string(), "TT");
        assert_eq!(Corner::ALL.len(), 5);
    }
}
