//! Behavioural Σ∆-modulator simulation — the system the paper's design
//! surface exists for.
//!
//! Sec. 2: the CDS integrator "is the basic building block for sigma-delta
//! modulators", and the authors "wish to use the optimal design surface of
//! this circuit for the construction of a fourth-order sigma-delta
//! modulator". This module closes that loop: a discrete-time single-loop
//! modulator of configurable order whose integrator stages carry the
//! *non-idealities of sized integrators* — leaky integration from finite
//! DC gain, gain error from incomplete settling, and input-referred
//! noise — all derived from an [`IntegratorReport`]. SNR is measured
//! in-band by direct DFT, so a designer can ask: *"if I build the
//! modulator from these Pareto-front designs, what converter do I get?"*
//!
//! The `examples/sigma_delta_system.rs` binary demonstrates the full
//! subsystem-level flow the paper's introduction motivates.

use crate::integrator::IntegratorReport;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Behavioural model of one switched-capacitor integrator stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageModel {
    /// Nominal charge-transfer gain of the stage (`C_S/C_F` scaled by the
    /// loop coefficient).
    pub gain: f64,
    /// Integrator pole: 1 for an ideal integrator, `1 − gain/A₀` for a
    /// finite-gain amplifier (leaky integration).
    pub leak: f64,
    /// Relative charge-transfer error from incomplete settling.
    pub gain_error: f64,
    /// RMS input-referred noise per sample (V, relative to a ±1 V
    /// full-scale).
    pub noise_rms: f64,
}

impl StageModel {
    /// An ideal stage with the given loop gain.
    pub fn ideal(gain: f64) -> Self {
        StageModel {
            gain,
            leak: 1.0,
            gain_error: 0.0,
            noise_rms: 0.0,
        }
    }

    /// Derives the stage non-idealities from a sized integrator's analysis
    /// report, for the given loop coefficient.
    ///
    /// * leak `= 1 − gain/A₀` (finite-gain pole error);
    /// * gain error `= settling_error` (incomplete charge transfer);
    /// * per-sample noise from the report's in-band dynamic range figure,
    ///   un-normalized back to wideband by the oversampling ratio and
    ///   referred to the modulator's unit full scale.
    pub fn from_report(report: &IntegratorReport, gain: f64, osr: f64) -> Self {
        let a0 = report.opamp.a0.max(1.0);
        let full_scale = (report.output_range * 0.5).max(1e-3); // ±FS in volts
                                                                // In-band noise power from DR: P_n = P_sig / 10^(DR/10) with
                                                                // P_sig = FS²/2; wideband per-sample variance is OSR× larger.
        let p_sig = full_scale * full_scale / 2.0;
        let p_noise_inband = p_sig / 10f64.powf(report.dynamic_range_db / 10.0);
        let noise_rms = (p_noise_inband * osr).sqrt() / full_scale;
        StageModel {
            gain,
            leak: 1.0 - gain / a0,
            gain_error: report.settling_error.min(0.5),
            noise_rms,
        }
    }
}

/// Batch companion to [`StageModel::from_report`]: derives the stage model
/// for every report of a sized generation in one sweep, preserving input
/// order. Element `i` is bit-identical to
/// `StageModel::from_report(&reports[i], gain, osr)`.
pub fn stage_models(reports: &[IntegratorReport], gain: f64, osr: f64) -> Vec<StageModel> {
    reports
        .iter()
        .map(|r| StageModel::from_report(r, gain, osr))
        .collect()
}

/// A single-loop, single-bit, distributed-feedback Σ∆ modulator.
#[derive(Debug, Clone, PartialEq)]
pub struct Modulator {
    stages: Vec<StageModel>,
    /// Feedback weight of the quantizer output into each stage.
    feedback: Vec<f64>,
    /// Integrator state clamp (models amplifier output limits).
    state_limit: f64,
}

impl Modulator {
    /// Builds a modulator from per-stage models and feedback weights.
    ///
    /// # Panics
    ///
    /// Panics if the vectors are empty or disagree in length.
    pub fn new(stages: Vec<StageModel>, feedback: Vec<f64>) -> Self {
        assert!(!stages.is_empty(), "need at least one stage");
        assert_eq!(
            stages.len(),
            feedback.len(),
            "one feedback weight per stage"
        );
        Modulator {
            stages,
            feedback,
            state_limit: 10.0,
        }
    }

    /// The classic second-order Boser–Wooley loop (gains ½, ½): stable to
    /// ≈ −3 dBFS inputs, textbook 15 dB/octave SQNR slope.
    pub fn second_order(models: [StageModel; 2]) -> Self {
        let mut stages = models.to_vec();
        stages[0].gain *= 0.5;
        stages[1].gain *= 0.5;
        Modulator::new(stages, vec![0.5, 0.5])
    }

    /// A fourth-order distributed-feedback loop with
    /// `NTF(z) = (1 − z⁻¹)⁴ / (1 − 0.8·z⁻¹)⁴`.
    ///
    /// The feedback coefficients follow by matching the loop
    /// characteristic polynomial of the delaying-integrator CIFB chain to
    /// the quadruple pole at `z = 0.8`:
    /// `a = [0.0016, 0.032, 0.24, 0.8]` (input side → quantizer side).
    /// The out-of-band NTF gain is `2⁴/1.8⁴ ≈ 1.52`, satisfying the Lee
    /// stability criterion for a single-bit quantizer; the input feeds the
    /// first stage with `b₁ = a₁` so the signal transfer function is unity
    /// at DC.
    pub fn fourth_order(models: [StageModel; 4]) -> Self {
        let a = [0.0016, 0.032, 0.24, 0.8];
        let mut stages = models.to_vec();
        stages[0].gain *= a[0];
        Modulator::new(stages, a.to_vec())
    }

    /// Number of stages (the loop order).
    pub fn order(&self) -> usize {
        self.stages.len()
    }

    /// Runs the modulator on `input` and returns the bitstream (±1).
    ///
    /// Stage states are clamped to the configured limit, as real amplifier
    /// outputs are; instability therefore shows up as SNR collapse rather
    /// than numeric overflow.
    pub fn run(&self, input: &[f64], seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let l = self.stages.len();
        let mut s = vec![0.0f64; l];
        let mut out = Vec::with_capacity(input.len());
        for &u in input {
            // Quantizer decision from the last integrator state.
            let v = if s[l - 1] >= 0.0 { 1.0 } else { -1.0 };
            out.push(v);
            // Delaying integrators: every stage integrates the *previous*
            // sample's upstream state, so the update order is immaterial.
            let old = s.clone();
            for (i, stage) in self.stages.iter().enumerate() {
                let prev = if i == 0 { u } else { old[i - 1] };
                let noise = if stage.noise_rms > 0.0 {
                    // Two uniform draws approximate a Gaussian well enough
                    // for noise budgeting (Irwin–Hall with n = 2, scaled).
                    stage.noise_rms * (rng.gen::<f64>() + rng.gen::<f64>() - 1.0) * 2.449
                } else {
                    0.0
                };
                // Distributed feedback: the weight a_i applies to the
                // quantizer decision directly. Noise is input-referred, so
                // it passes through the stage gain like the signal.
                let new_state = stage.leak * old[i]
                    + stage.gain * (1.0 - stage.gain_error) * (prev + noise)
                    - self.feedback[i] * v;
                s[i] = new_state.clamp(-self.state_limit, self.state_limit);
            }
        }
        out
    }
}

/// Result of an SNR measurement on a bitstream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnrReport {
    /// Signal-to-noise ratio in the band (dB).
    pub snr_db: f64,
    /// Recovered signal amplitude (full-scale = 1).
    pub signal_amplitude: f64,
    /// In-band noise power (full-scale² units).
    pub noise_power: f64,
}

/// Measures in-band SNR of a bitstream produced from a coherent sine at
/// DFT bin `signal_bin`, with the band defined by `osr`
/// (bins `1 ..= n/(2·osr)`).
///
/// Direct DFT over the in-band bins only — no windowing needed because
/// the test tone is bin-coherent.
///
/// # Panics
///
/// Panics if the band is empty or the signal bin lies outside it.
pub fn measure_snr(bitstream: &[f64], signal_bin: usize, osr: usize) -> SnrReport {
    let n = bitstream.len();
    let band_edge = n / (2 * osr);
    assert!(band_edge >= 2, "band has no bins: lengthen the run");
    assert!(
        signal_bin >= 1 && signal_bin < band_edge,
        "signal bin {signal_bin} outside band 1..{band_edge}"
    );
    let dft = |k: usize| -> (f64, f64) {
        let w = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
        let (mut re, mut im) = (0.0, 0.0);
        for (t, &x) in bitstream.iter().enumerate() {
            let ph = w * t as f64;
            re += x * ph.cos();
            im -= x * ph.sin();
        }
        (re / n as f64, im / n as f64)
    };
    let mut signal_power = 0.0;
    let mut noise_power = 0.0;
    for k in 1..band_edge {
        let (re, im) = dft(k);
        let p = 2.0 * (re * re + im * im); // one-sided
                                           // The tone leaks nowhere (coherent); adjacent bins are all noise.
        if k == signal_bin {
            signal_power = p;
        } else {
            noise_power += p;
        }
    }
    SnrReport {
        snr_db: 10.0 * (signal_power / noise_power.max(1e-300)).log10(),
        signal_amplitude: (signal_power).sqrt(),
        noise_power,
    }
}

/// Generates a coherent test sine of `amplitude` at DFT bin `bin` over
/// `n` samples.
pub fn coherent_tone(n: usize, bin: usize, amplitude: f64) -> Vec<f64> {
    (0..n)
        .map(|t| amplitude * (2.0 * std::f64::consts::PI * bin as f64 * t as f64 / n as f64).sin())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 16384;
    const OSR: usize = 64;

    fn snr_of(modulator: &Modulator, amplitude: f64) -> f64 {
        let tone = coherent_tone(N, 3, amplitude);
        let bits = modulator.run(&tone, 7);
        measure_snr(&bits, 3, OSR).snr_db
    }

    #[test]
    fn second_order_ideal_snr_in_textbook_range() {
        let m = Modulator::second_order([StageModel::ideal(1.0), StageModel::ideal(1.0)]);
        let snr = snr_of(&m, 0.5);
        // Ideal 2nd order at OSR 64: ~70–90 dB depending on tones/dither.
        assert!((55.0..100.0).contains(&snr), "2nd-order SNR {snr} dB");
    }

    #[test]
    fn fourth_order_beats_second_order() {
        let m2 = Modulator::second_order([StageModel::ideal(1.0), StageModel::ideal(1.0)]);
        let m4 = Modulator::fourth_order([
            StageModel::ideal(1.0),
            StageModel::ideal(1.0),
            StageModel::ideal(1.0),
            StageModel::ideal(1.0),
        ]);
        let snr2 = snr_of(&m2, 0.3);
        let snr4 = snr_of(&m4, 0.3);
        // The conservative all-real-pole NTF (out-of-band gain 1.52)
        // trades ~30 dB of ideal suppression for guaranteed single-bit
        // stability; it still clearly outperforms the 2nd-order loop.
        assert!(
            snr4 > snr2 + 5.0,
            "4th order ({snr4} dB) should clearly beat 2nd ({snr2} dB)"
        );
    }

    #[test]
    fn oversampling_improves_snr() {
        let m = Modulator::second_order([StageModel::ideal(1.0), StageModel::ideal(1.0)]);
        let tone = coherent_tone(N, 3, 0.5);
        let bits = m.run(&tone, 7);
        let wide = measure_snr(&bits, 3, 32).snr_db;
        let narrow = measure_snr(&bits, 3, 128).snr_db;
        assert!(
            narrow > wide + 10.0,
            "higher OSR must help: {wide} -> {narrow}"
        );
    }

    #[test]
    fn leaky_integrators_degrade_snr() {
        let ideal = Modulator::second_order([StageModel::ideal(1.0), StageModel::ideal(1.0)]);
        let mut leaky_stage = StageModel::ideal(1.0);
        leaky_stage.leak = 1.0 - 1.0 / 10.0; // A0 = 10: severely leaky
        let leaky = Modulator::second_order([leaky_stage, leaky_stage]);
        let snr_ideal = snr_of(&ideal, 0.5);
        let snr_leaky = snr_of(&leaky, 0.5);
        assert!(
            snr_leaky < snr_ideal - 6.0,
            "leak must cost SNR: {snr_ideal} -> {snr_leaky}"
        );
    }

    #[test]
    fn stage_noise_floors_the_snr() {
        let mut noisy_stage = StageModel::ideal(1.0);
        noisy_stage.noise_rms = 3e-3;
        let noisy = Modulator::second_order([noisy_stage, StageModel::ideal(1.0)]);
        let clean = Modulator::second_order([StageModel::ideal(1.0), StageModel::ideal(1.0)]);
        let snr_noisy = snr_of(&noisy, 0.5);
        let snr_clean = snr_of(&clean, 0.5);
        assert!(snr_noisy < snr_clean, "{snr_clean} -> {snr_noisy}");
    }

    #[test]
    fn from_report_maps_nonidealities() {
        use crate::integrator::{analyze, ClockContext};
        use crate::process::Process;
        use crate::sizing::DesignVector;
        let report = analyze(
            &DesignVector::reference().with_cl(1e-12),
            &Process::nominal(),
            &ClockContext::standard(),
        );
        let stage = StageModel::from_report(&report, 1.0, 128.0);
        assert!(
            stage.leak < 1.0 && stage.leak > 0.999,
            "leak {}",
            stage.leak
        );
        assert!(stage.gain_error > 0.0 && stage.gain_error < 1e-2);
        assert!(stage.noise_rms > 0.0 && stage.noise_rms < 1e-2);
    }

    #[test]
    fn stage_models_batch_matches_from_report() {
        use crate::integrator::{analyze, ClockContext};
        use crate::process::Process;
        use crate::sizing::DesignVector;
        let reports: Vec<_> = [0.5e-12, 1e-12, 2e-12]
            .iter()
            .map(|&cl| {
                analyze(
                    &DesignVector::reference().with_cl(cl),
                    &Process::nominal(),
                    &ClockContext::standard(),
                )
            })
            .collect();
        let batch = stage_models(&reports, 0.5, 128.0);
        assert_eq!(batch.len(), reports.len());
        for (b, r) in batch.iter().zip(&reports) {
            assert_eq!(*b, StageModel::from_report(r, 0.5, 128.0));
        }
    }

    #[test]
    fn modulator_from_sized_integrators_still_converts() {
        use crate::integrator::{analyze, ClockContext};
        use crate::process::Process;
        use crate::sizing::DesignVector;
        let report = analyze(
            &DesignVector::reference().with_cl(1e-12),
            &Process::nominal(),
            &ClockContext::standard(),
        );
        let stage = StageModel::from_report(&report, 1.0, OSR as f64);
        let m = Modulator::second_order([stage, stage]);
        let snr = snr_of(&m, 0.5);
        assert!(snr > 40.0, "sized-integrator modulator SNR {snr} dB");
    }

    #[test]
    #[should_panic(expected = "outside band")]
    fn snr_rejects_out_of_band_tone() {
        let bits = vec![1.0; 4096];
        let _ = measure_snr(&bits, 4000, 64);
    }

    #[test]
    fn coherent_tone_is_bin_exact() {
        let tone = coherent_tone(1024, 5, 0.25);
        let r = measure_snr(&tone, 5, 8);
        // A pure tone has essentially no in-band "noise".
        assert!(r.snr_db > 100.0, "pure tone SNR {}", r.snr_db);
        assert!((r.signal_amplitude - 0.25 / 2f64.sqrt()).abs() < 0.01);
    }
}
