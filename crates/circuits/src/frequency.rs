//! Open-loop frequency response of the compensated two-stage op-amp:
//! gain/phase vs frequency, unity-gain frequency and phase margin — the
//! AC view behind the analytical `p2`/`zero`/`ω_c` figures.
//!
//! The compensated amplifier is modelled with its dominant pole
//! (`p₁ = ω_u / A₀`), non-dominant pole `p₂` and right-half-plane zero
//! `z`:
//!
//! ```text
//! A(s) = A₀ · (1 − s/z) / ((1 + s/p₁)(1 + s/p₂))
//! ```
//!
//! (the RHP zero adds phase *lag* while boosting magnitude — the classic
//! Miller-compensation hazard).

use crate::integrator::IntegratorReport;

/// One point of a frequency sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponsePoint {
    /// Frequency (Hz).
    pub frequency: f64,
    /// Magnitude (dB).
    pub magnitude_db: f64,
    /// Phase (degrees, 0 at DC, falling).
    pub phase_deg: f64,
}

/// Frequency-domain summary of an op-amp inside its integrator context.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyResponse {
    /// Swept points (log-spaced).
    pub points: Vec<ResponsePoint>,
    /// Open-loop unity-gain frequency (Hz).
    pub unity_gain_hz: f64,
    /// Phase margin at the *loop* crossover (deg), including the feedback
    /// factor β.
    pub phase_margin_deg: f64,
}

/// Evaluates `A(jω)` for the three-singularity model of `report`.
fn gain_at(report: &IntegratorReport, omega: f64) -> (f64, f64) {
    let a0 = report.opamp.a0.max(1e-9);
    let p1 = (report.omega_c / report.beta.max(1e-9)) / a0; // dominant pole
    let p2 = report.p2;
    let z = report.zero;
    // magnitude
    let num = (1.0 + (omega / z).powi(2)).sqrt();
    let den = ((1.0 + (omega / p1).powi(2)) * (1.0 + (omega / p2).powi(2))).sqrt();
    let mag = a0 * num / den;
    // phase: two pole lags plus the RHP-zero lag
    let phase = -(omega / p1).atan() - (omega / p2).atan() - (omega / z).atan();
    (mag, phase.to_degrees())
}

/// Sweeps the open-loop response over `[f_lo, f_hi]` with `points`
/// log-spaced samples and computes unity-gain frequency and loop phase
/// margin.
///
/// # Panics
///
/// Panics if `points < 2` or the frequency range is not positive and
/// increasing.
pub fn sweep(report: &IntegratorReport, f_lo: f64, f_hi: f64, points: usize) -> FrequencyResponse {
    assert!(points >= 2, "need at least two sweep points");
    assert!(
        f_lo > 0.0 && f_hi > f_lo,
        "need a positive, increasing frequency range"
    );
    let ratio = (f_hi / f_lo).ln();
    let pts: Vec<ResponsePoint> = (0..points)
        .map(|k| {
            let f = f_lo * (ratio * k as f64 / (points - 1) as f64).exp();
            let (mag, phase) = gain_at(report, 2.0 * std::f64::consts::PI * f);
            ResponsePoint {
                frequency: f,
                magnitude_db: 20.0 * mag.max(1e-30).log10(),
                phase_deg: phase,
            }
        })
        .collect();

    // Unity-gain frequency of the open loop: bisection on |A| = 1.
    let mag_of = |f: f64| gain_at(report, 2.0 * std::f64::consts::PI * f).0;
    let unity_gain_hz = bisect_crossing(mag_of, 1.0, f_lo, f_hi);

    // Loop phase margin: crossover where β·|A| = 1.
    let beta = report.beta.max(1e-9);
    let loop_mag = |f: f64| beta * mag_of(f);
    let f_c = bisect_crossing(loop_mag, 1.0, f_lo, f_hi);
    let (_, phase_at_c) = gain_at(report, 2.0 * std::f64::consts::PI * f_c);
    let phase_margin_deg = 180.0 + phase_at_c;

    FrequencyResponse {
        points: pts,
        unity_gain_hz,
        phase_margin_deg,
    }
}

/// Finds the frequency where a monotone-decreasing magnitude crosses
/// `level` (clamps to the range edges when it never does).
fn bisect_crossing(mag: impl Fn(f64) -> f64, level: f64, f_lo: f64, f_hi: f64) -> f64 {
    if mag(f_lo) <= level {
        return f_lo;
    }
    if mag(f_hi) >= level {
        return f_hi;
    }
    let (mut lo, mut hi) = (f_lo, f_hi);
    for _ in 0..60 {
        let mid = (lo * hi).sqrt(); // geometric midpoint for log-scaled axis
        if mag(mid) > level {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo * hi).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrator::{analyze, ClockContext};
    use crate::process::Process;
    use crate::sizing::DesignVector;

    fn reference_report() -> IntegratorReport {
        analyze(
            &DesignVector::reference().with_cl(1e-12),
            &Process::nominal(),
            &ClockContext::standard(),
        )
    }

    #[test]
    fn dc_gain_matches_report() {
        let r = reference_report();
        let resp = sweep(&r, 1.0, 1e9, 61);
        let dc = resp.points.first().unwrap();
        assert!(
            (dc.magnitude_db - r.opamp.a0_db()).abs() < 0.5,
            "DC gain {} vs report {}",
            dc.magnitude_db,
            r.opamp.a0_db()
        );
        assert!(dc.phase_deg.abs() < 1.0);
    }

    #[test]
    fn magnitude_is_monotone_decreasing() {
        let r = reference_report();
        let resp = sweep(&r, 10.0, 1e9, 101);
        for w in resp.points.windows(2) {
            assert!(
                w[1].magnitude_db <= w[0].magnitude_db + 1e-6,
                "magnitude rose between {} and {} Hz",
                w[0].frequency,
                w[1].frequency
            );
        }
    }

    #[test]
    fn unity_gain_matches_gbw_scale() {
        let r = reference_report();
        let resp = sweep(&r, 1.0, 1e10, 61);
        let gbw = r.opamp.gm1 / r.opamp.cc_eff / (2.0 * std::f64::consts::PI);
        let ratio = resp.unity_gain_hz / gbw;
        assert!(
            (0.3..3.0).contains(&ratio),
            "unity gain {} vs GBW {gbw}",
            resp.unity_gain_hz
        );
    }

    #[test]
    fn phase_margin_is_positive_and_sane() {
        let r = reference_report();
        let resp = sweep(&r, 1.0, 1e10, 61);
        assert!(
            (20.0..=120.0).contains(&resp.phase_margin_deg),
            "phase margin {}",
            resp.phase_margin_deg
        );
    }

    #[test]
    fn heavier_load_erodes_phase_margin() {
        let clock = ClockContext::standard();
        let p = Process::nominal();
        let light = analyze(&DesignVector::reference().with_cl(0.2e-12), &p, &clock);
        let heavy = analyze(&DesignVector::reference().with_cl(5e-12), &p, &clock);
        let pm_light = sweep(&light, 1.0, 1e10, 41).phase_margin_deg;
        let pm_heavy = sweep(&heavy, 1.0, 1e10, 41).phase_margin_deg;
        assert!(
            pm_heavy < pm_light,
            "phase margin should fall with load: {pm_light} -> {pm_heavy}"
        );
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn sweep_rejects_single_point() {
        let r = reference_report();
        let _ = sweep(&r, 1.0, 1e9, 1);
    }
}
