//! The **drivable-load** formulation of the sizing problem — the variant
//! used by every paper-figure experiment.
//!
//! Here the load capacitance is not a free decision variable but a derived
//! performance figure: the *maximum* load the sizing can drive while
//! meeting the load-dependent constraints (settling time, settling error,
//! stability margin) with a safety margin. Those three quantities are
//! monotone in the load, so the drivable load is found exactly by
//! bisection.
//!
//! This matches the engineering question behind the paper's design-surface
//! methodology — "what load can this sizing serve, and at what power?" —
//! and it makes the load axis *hard to traverse*: moving a design along
//! the front requires re-sizing the output stage, compensation and bias
//! network coherently, which is precisely the regime where a purely global
//! GA loses front diversity (Sec. 3 of the paper) and partition-protected
//! local competition pays off.
//!
//! The 15 decision parameters are the 14 sizing parameters of
//! [`DesignVector`] plus the input common-mode voltage (gene 15).

use crate::batch::DesignBatch;
use crate::integrator::{self, ClockContext, IntegratorReport};
use crate::problem::IntegratorProblem;
use crate::process::Process;
use crate::sizing::{DesignVector, CL_RANGE, NUM_PARAMS};
use crate::specs::Spec;
use crate::yield_est::{self, SamplePoint};
use moea::evaluation::{Evaluation, ViolationBuilder};
use moea::individual::Individual;
use moea::problem::{Bounds, Problem};

/// Safety margin applied to the load-dependent constraints during the
/// drivable-load bisection: the nominal design must meet `margin × spec`
/// so that process corners retain headroom.
pub const LOAD_MARGIN: f64 = 0.8;

/// Required non-dominant-pole to crossover ratio for stability.
pub const STABILITY_RATIO: f64 = 1.5;

/// Bisection steps for the drivable load (resolution ≈ 5 pF / 2⁹ ≈ 10 fF).
const BISECTION_STEPS: usize = 9;

/// The drivable-load sizing problem (2 objectives: maximize drivable load,
/// minimize power; 9 constraints).
///
/// # Examples
///
/// ```
/// use analog_circuits::drivable::DrivableLoadProblem;
/// use analog_circuits::Spec;
/// use moea::Problem;
///
/// let p = DrivableLoadProblem::new(Spec::featured());
/// let ev = p.evaluate(&vec![0.5; 15]);
/// assert_eq!(ev.objectives().len(), 2);
/// assert_eq!(ev.constraint_violations().len(), 9);
/// ```
#[derive(Debug, Clone)]
pub struct DrivableLoadProblem {
    spec: Spec,
    process: Process,
    clock: ClockContext,
    bounds: Bounds,
    name: String,
}

impl DrivableLoadProblem {
    /// Creates the problem for a specification with the nominal process
    /// and standard clock.
    pub fn new(spec: Spec) -> Self {
        let name = format!("integrator-drivable-load({})", spec.name);
        DrivableLoadProblem {
            spec,
            process: Process::nominal(),
            clock: ClockContext::standard(),
            bounds: DesignVector::gene_bounds(),
            name,
        }
    }

    /// Replaces the process description.
    pub fn with_process(mut self, process: Process) -> Self {
        self.process = process;
        self
    }

    /// Replaces the clock context.
    pub fn with_clock(mut self, clock: ClockContext) -> Self {
        self.clock = clock;
        self
    }

    /// The specification being targeted.
    pub fn spec(&self) -> &Spec {
        &self.spec
    }

    /// The nominal process in use.
    pub fn process(&self) -> &Process {
        &self.process
    }

    /// The clock context in use.
    pub fn clock(&self) -> &ClockContext {
        &self.clock
    }

    /// `true` when `report` meets the load-dependent constraints with the
    /// bisection margin.
    fn load_ok(&self, report: &IntegratorReport) -> bool {
        report.is_biased()
            && report.settling_time <= LOAD_MARGIN * self.spec.st_max
            && report.settling_error <= LOAD_MARGIN * self.spec.se_max
            && report.p2 >= STABILITY_RATIO * report.omega_c
    }

    /// Computes the drivable load of a sizing: the largest `C_L` in the
    /// exploration range meeting the margined load-dependent constraints,
    /// or `None` when no load in the range can be driven.
    ///
    /// Settling time is *mostly* monotone in the load, but a heavily
    /// overdamped design can settle faster as the closed-loop pole pair
    /// coalesces, so the feasible-load set may exclude light loads. The
    /// search therefore anchors on a coarse top-down scan before bisecting
    /// the upper feasibility edge.
    ///
    /// Returns the load together with the report *at* that load.
    pub fn drivable_load(&self, dv: &DesignVector) -> Option<(f64, IntegratorReport)> {
        let at = |cl: f64| integrator::analyze(&dv.with_cl(cl), &self.process, &self.clock);
        let report_max = at(CL_RANGE.1);
        if self.load_ok(&report_max) {
            return Some((CL_RANGE.1, report_max));
        }
        // Coarse scan from the top for the highest feasible anchor.
        const SCAN: usize = 8;
        let step = (CL_RANGE.1 - CL_RANGE.0) / SCAN as f64;
        let mut anchor: Option<(f64, IntegratorReport)> = None;
        let mut infeasible_above = CL_RANGE.1;
        for k in (0..SCAN).rev() {
            let cl = CL_RANGE.0 + k as f64 * step;
            let r = at(cl);
            if self.load_ok(&r) {
                anchor = Some((cl, r));
                break;
            }
            infeasible_above = cl;
        }
        let (mut lo, mut best) = anchor?;
        let mut hi = infeasible_above;
        for _ in 0..BISECTION_STEPS {
            let mid = 0.5 * (lo + hi);
            let r = at(mid);
            if self.load_ok(&r) {
                lo = mid;
                best = r;
            } else {
                hi = mid;
            }
        }
        Some((lo, best))
    }

    /// Full diagnostic report at the drivable load (minimum-load report
    /// when nothing is drivable).
    pub fn report(&self, genes: &[f64]) -> IntegratorReport {
        let dv = DesignVector::from_sizing_genes(genes).quantize();
        match self.drivable_load(&dv) {
            Some((_, r)) => r,
            None => integrator::analyze(&dv.with_cl(CL_RANGE.0), &self.process, &self.clock),
        }
    }

    /// Converts internal objectives to the paper axes; delegates to
    /// [`IntegratorProblem::to_paper_axes`].
    pub fn to_paper_axes(objectives: &[f64]) -> (f64, f64) {
        IntegratorProblem::to_paper_axes(objectives)
    }

    /// The paper's hypervolume metric; delegates to
    /// [`IntegratorProblem::paper_hypervolume`].
    pub fn paper_hypervolume(front: &[Individual]) -> f64 {
        IntegratorProblem::paper_hypervolume(front)
    }

    /// The partitioned objective range in internal (minimized)
    /// coordinates: `f0 = −C_L` over the 0–5 pF exploration range.
    pub fn slice_range() -> (f64, f64) {
        (-CL_RANGE.1, 0.0)
    }

    /// Evaluates one already-decoded, already-quantized design against a
    /// pre-built robustness sample table.
    ///
    /// This is the single evaluation body shared by the scalar
    /// [`Problem::evaluate`] path and the batch kernel
    /// ([`Problem::evaluate_all`]): the scalar path builds a fresh table
    /// per call, the batch path builds it once per generation. Because
    /// both paths execute this exact function, they are bit-for-bit
    /// identical by construction.
    pub(crate) fn evaluate_quantized(
        &self,
        dv: &DesignVector,
        plan: &[(SamplePoint, Process)],
    ) -> Evaluation {
        let spec = &self.spec;

        let (cl, report) = match self.drivable_load(dv) {
            Some((cl, report)) => (cl, report),
            None => {
                // Cannot drive even the minimum load: grade the violations
                // at the minimum load so the GA has a gradient toward
                // drivability.
                let report =
                    integrator::analyze(&dv.with_cl(CL_RANGE.0), &self.process, &self.clock);
                (0.0, report)
            }
        };
        let drivable = cl > 0.0;

        // Robustness at the claimed operating point (full, unmargined
        // spec): corner headroom must come from the LOAD_MARGIN.
        let dv_at = dv.with_cl(if drivable { cl } else { CL_RANGE.0 });
        let robustness = if report.is_biased() {
            yield_est::robustness_prepared(&dv_at, plan, &self.clock, spec).0
        } else {
            0.0
        };

        let mut v = ViolationBuilder::new();
        v.at_least(report.dynamic_range_db, spec.dr_min_db); // 1 DR
        v.at_least(report.output_range, spec.or_min_v); // 2 OR
                                                        // 3–5: drivability at the minimum load (zero once drivable).
        if drivable {
            v.require(true).require(true).require(true);
        } else {
            v.at_most(report.settling_time, LOAD_MARGIN * spec.st_max);
            v.at_most(report.settling_error, LOAD_MARGIN * spec.se_max);
            v.at_least(report.p2, STABILITY_RATIO * report.omega_c);
        }
        v.at_most(report.area, spec.area_max); // 6 area
        v.at_least(report.opamp.sat_margin, spec.sat_margin_min); // 7 regions
        v.at_most(report.opamp.systematic_offset, 2e-3); // 8 matching
        v.at_least(robustness, spec.robustness_min); // 9 yield

        Evaluation::new(vec![-cl, report.power], v.finish())
    }
}

/// Cache canonicalizer for the drivable-load gene encoding: collapses every
/// raw gene vector onto the genes of its *quantized* design (unit fingers,
/// unit capacitors, bias-DAC steps), so candidates that decode to the same
/// manufactured sizing share one cache entry. Gene 15 (input common-mode)
/// is continuous — it is passed through clamped, not re-derived, because
/// [`DesignVector::to_genes`] slot 14 encodes the load capacitance, which
/// the drivable-load formulation does not take from the genome.
pub fn canonical_sizing_genes(genes: &[f64]) -> Vec<f64> {
    if genes.len() != NUM_PARAMS {
        return genes.to_vec();
    }
    let dv = DesignVector::from_sizing_genes(genes).quantize();
    let mut basis = dv.to_genes();
    basis[NUM_PARAMS - 1] = genes[NUM_PARAMS - 1].clamp(0.0, 1.0);
    basis
}

impl Problem for DrivableLoadProblem {
    fn name(&self) -> &str {
        &self.name
    }

    fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    fn num_objectives(&self) -> usize {
        2
    }

    fn num_constraints(&self) -> usize {
        9
    }

    fn evaluate(&self, x: &[f64]) -> Evaluation {
        debug_assert_eq!(x.len(), NUM_PARAMS);
        // Designs are evaluated as they would be drawn: unit fingers, unit
        // capacitors, bias-DAC steps (see [`DesignVector::quantize`]).
        let dv = DesignVector::from_sizing_genes(x).quantize();
        self.evaluate_quantized(&dv, &yield_est::prepared_plan(&self.process))
    }

    fn evaluate_all(&self, batch: &[Vec<f64>]) -> Vec<Evaluation> {
        // Struct-of-arrays fast path: decode the whole generation into
        // contiguous per-parameter columns, quantize column-wise, and hoist
        // the corner/mismatch process table out of the per-candidate loop.
        let db = DesignBatch::decode_sizing(batch).quantize();
        let plan = yield_est::prepared_plan(&self.process);
        (0..db.len())
            .map(|i| self.evaluate_quantized(&db.design(i), &plan))
            .collect()
    }

    fn cache_canonicalizer(&self) -> Option<engine::CacheCanonicalizer> {
        Some(canonical_sizing_genes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declares_15_vars_2_objs_9_constraints() {
        let p = DrivableLoadProblem::new(Spec::featured());
        assert_eq!(p.num_variables(), 15);
        assert_eq!(p.num_objectives(), 2);
        assert_eq!(p.num_constraints(), 9);
    }

    #[test]
    fn reference_design_drives_a_nontrivial_load() {
        let p = DrivableLoadProblem::new(Spec::featured());
        let dv = DesignVector::reference();
        let (cl, report) = p.drivable_load(&dv).expect("reference must drive a load");
        assert!(cl > 0.1e-12, "drivable load {cl}");
        assert!(report.settling_time <= LOAD_MARGIN * p.spec().st_max);
    }

    #[test]
    fn drivable_load_is_boundary_tight() {
        // Just above the returned load, some margined constraint fails
        // (unless the ceiling was hit).
        let p = DrivableLoadProblem::new(Spec::featured());
        let dv = DesignVector::reference();
        let (cl, _) = p.drivable_load(&dv).unwrap();
        if cl < CL_RANGE.1 * 0.999 {
            let above = integrator::analyze(
                &dv.with_cl(cl + 0.05e-12),
                p.process(),
                &ClockContext::standard(),
            );
            assert!(
                !p.load_ok(&above),
                "load {} should not be drivable",
                cl + 0.05e-12
            );
        }
    }

    #[test]
    fn weak_design_drives_nothing() {
        let p = DrivableLoadProblem::new(Spec::featured());
        // Minimum everything: starved bias cannot settle in time.
        let ev = p.evaluate(&[0.0; 15]);
        assert_eq!(ev.objectives()[0], 0.0); // -cl = 0
        assert!(!ev.is_feasible());
    }

    #[test]
    fn stronger_output_stage_drives_more() {
        let p = DrivableLoadProblem::new(Spec::relaxed());
        let mut weak = DesignVector::reference();
        weak.w6 /= 3.0;
        weak.w7 /= 3.0;
        weak.itail /= 2.0;
        let strong = DesignVector::reference();
        let cl_weak = p.drivable_load(&weak).map(|(c, _)| c).unwrap_or(0.0);
        let cl_strong = p.drivable_load(&strong).map(|(c, _)| c).unwrap_or(0.0);
        assert!(
            cl_strong > cl_weak,
            "strong {cl_strong} should beat weak {cl_weak}"
        );
    }

    #[test]
    fn evaluation_is_deterministic() {
        let p = DrivableLoadProblem::new(Spec::featured());
        let genes = vec![0.43; 15];
        assert_eq!(p.evaluate(&genes), p.evaluate(&genes));
    }

    #[test]
    fn gene15_maps_to_common_mode() {
        let mut genes = vec![0.5; 15];
        genes[14] = 0.0;
        let lo = DesignVector::from_sizing_genes(&genes);
        genes[14] = 1.0;
        let hi = DesignVector::from_sizing_genes(&genes);
        assert!(lo.vcm_in < hi.vcm_in);
        assert!((lo.vcm_in - crate::sizing::VCM_RANGE.0).abs() < 1e-12);
        assert!((hi.vcm_in - crate::sizing::VCM_RANGE.1).abs() < 1e-12);
    }

    #[test]
    fn common_mode_affects_feasibility() {
        // Extreme common-mode squeezes tail or mirror headroom.
        let p = DrivableLoadProblem::new(Spec::relaxed());
        let mut dv = DesignVector::reference();
        dv.vcm_in = 0.55;
        let low = p.drivable_load(&dv).map(|(c, _)| c).unwrap_or(0.0);
        dv.vcm_in = 0.9;
        let mid = p.drivable_load(&dv).map(|(c, _)| c).unwrap_or(0.0);
        assert!(mid >= low, "mid-rail CM should not hurt: {mid} vs {low}");
    }

    #[test]
    fn report_accessor_never_panics() {
        let p = DrivableLoadProblem::new(Spec::featured());
        let r = p.report(&[0.0; 15]);
        assert!(r.power.is_finite());
    }

    #[test]
    fn batch_evaluate_all_is_bit_identical_to_scalar() {
        let p = DrivableLoadProblem::new(Spec::featured());
        let batch: Vec<Vec<f64>> = (0..7)
            .map(|i| {
                (0..15)
                    .map(|j| ((i * 15 + j) as f64 * 0.173).fract())
                    .collect()
            })
            .collect();
        let fast = p.evaluate_all(&batch);
        let slow: Vec<_> = batch.iter().map(|g| p.evaluate(g)).collect();
        assert_eq!(fast, slow);
    }

    #[test]
    fn canonicalizer_collapses_quantization_neighbors() {
        let a = vec![0.43; 15];
        // Perturb a width gene by far less than one quantization cell.
        let mut b = a.clone();
        b[0] += 1e-7;
        let ca = canonical_sizing_genes(&a);
        let cb = canonical_sizing_genes(&b);
        assert_eq!(ca, cb, "sub-cell perturbation must share a cache key basis");
        let p = DrivableLoadProblem::new(Spec::featured());
        assert_eq!(p.evaluate(&a), p.evaluate(&b));
    }

    #[test]
    fn canonicalizer_preserves_common_mode() {
        let mut a = vec![0.43; 15];
        let mut b = vec![0.43; 15];
        a[14] = 0.2;
        b[14] = 0.8;
        assert_ne!(canonical_sizing_genes(&a), canonical_sizing_genes(&b));
        assert_eq!(canonical_sizing_genes(&a)[14], 0.2);
    }

    #[test]
    fn canonicalizer_passes_foreign_lengths_through() {
        let odd = vec![0.5; 3];
        assert_eq!(canonical_sizing_genes(&odd), odd);
    }
}
