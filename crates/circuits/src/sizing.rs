//! The 15-parameter design vector of the integrator sizing problem and its
//! mapping from unit-cube GA genes.
//!
//! The paper frames the optimization with 15 design parameters after an
//! initial topology-based reduction. Our parameterization of the standard
//! two-stage op-amp + SC integrator:
//!
//! | #  | parameter | meaning                                   | mapping |
//! |----|-----------|-------------------------------------------|---------|
//! | 0  | `w1`      | input-pair NMOS width                     | log     |
//! | 1  | `l1`      | input-pair NMOS length                    | log     |
//! | 2  | `w3`      | mirror-load PMOS width                    | log     |
//! | 3  | `l3`      | mirror-load PMOS length                   | log     |
//! | 4  | `w5`      | tail NMOS width                           | log     |
//! | 5  | `l5`      | tail NMOS length                          | log     |
//! | 6  | `w6`      | 2nd-stage PMOS driver width               | log     |
//! | 7  | `l6`      | 2nd-stage PMOS driver length              | log     |
//! | 8  | `w7`      | 2nd-stage NMOS sink width                 | log     |
//! | 9  | `l7`      | 2nd-stage NMOS sink length                | log     |
//! | 10 | `itail`   | first-stage tail current                  | log     |
//! | 11 | `cc`      | Miller compensation capacitor             | log     |
//! | 12 | `cs`      | sampling capacitor                        | log     |
//! | 13 | `cf`      | feedback (integrating) capacitor          | log     |
//! | 14 | `cl`      | load capacitance (explored objective)     | linear  |
//!
//! Genes live in `[0, 1]`¹⁵ so one [`moea::Bounds`] serves the GA; widths,
//! currents and capacitors are mapped logarithmically (they span decades),
//! while the load capacitance is mapped **linearly** across 0.02–5 pF so
//! uniform initialization spreads designs evenly over the partitioned axis.
//! The offset-storage capacitors of the CDS network are tied to `cs`
//! (`C_OC = C_S`), a standard choice that the topology reduction folds in.

use moea::problem::Bounds;

/// Number of design parameters (genes).
pub const NUM_PARAMS: usize = 15;

/// Load-capacitance exploration range (F): 0.02–5 pF.
pub const CL_RANGE: (f64, f64) = (0.02e-12, 5.0e-12);

/// One decoded design point, in SI units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignVector {
    /// Input-pair NMOS width (m).
    pub w1: f64,
    /// Input-pair NMOS length (m).
    pub l1: f64,
    /// Mirror-load PMOS width (m).
    pub w3: f64,
    /// Mirror-load PMOS length (m).
    pub l3: f64,
    /// Tail NMOS width (m).
    pub w5: f64,
    /// Tail NMOS length (m).
    pub l5: f64,
    /// Second-stage PMOS driver width (m).
    pub w6: f64,
    /// Second-stage PMOS driver length (m).
    pub l6: f64,
    /// Second-stage NMOS sink width (m).
    pub w7: f64,
    /// Second-stage NMOS sink length (m).
    pub l7: f64,
    /// First-stage tail current (A).
    pub itail: f64,
    /// Miller compensation capacitor (F).
    pub cc: f64,
    /// Sampling capacitor (F).
    pub cs: f64,
    /// Feedback / integrating capacitor (F).
    pub cf: f64,
    /// Load capacitance (F) — the explored objective axis.
    pub cl: f64,
    /// Input common-mode voltage (V). Fixed at `0.9` by
    /// [`from_genes`](DesignVector::from_genes); searched (as the 15th
    /// parameter, replacing the direct `cl` gene) by
    /// [`from_sizing_genes`](DesignVector::from_sizing_genes).
    pub vcm_in: f64,
}

/// Input common-mode search range used by the drivable-load formulation.
pub const VCM_RANGE: (f64, f64) = (0.55, 1.25);

/// Layout width quantum: transistors are drawn as unit fingers (m).
pub const W_UNIT: f64 = 2.5e-6;

/// Layout length quantum (m).
pub const L_UNIT: f64 = 0.01e-6;

/// Unit capacitor for matched capacitor arrays (F).
pub const C_UNIT: f64 = 0.25e-12;

/// Bias-current DAC step (A).
pub const I_UNIT: f64 = 0.5e-6;

/// `(min, max, log?)` for each of the 15 parameters, in gene order.
/// Shared with the struct-of-arrays batch decoder (`crate::batch`), which
/// must reproduce [`DesignVector::from_genes`] bit for bit.
pub(crate) const PARAM_RANGES: [(f64, f64, bool); NUM_PARAMS] = [
    (1.0e-6, 400.0e-6, true),        // w1
    (0.18e-6, 1.5e-6, true),         // l1
    (1.0e-6, 400.0e-6, true),        // w3
    (0.18e-6, 1.5e-6, true),         // l3
    (2.0e-6, 500.0e-6, true),        // w5
    (0.18e-6, 1.5e-6, true),         // l5
    (2.0e-6, 1000.0e-6, true),       // w6
    (0.18e-6, 1.0e-6, true),         // l6
    (2.0e-6, 500.0e-6, true),        // w7
    (0.18e-6, 1.0e-6, true),         // l7
    (2.0e-6, 500.0e-6, true),        // itail (A)
    (0.1e-12, 6.0e-12, true),        // cc
    (0.2e-12, 8.0e-12, true),        // cs
    (0.2e-12, 8.0e-12, true),        // cf
    (CL_RANGE.0, CL_RANGE.1, false), // cl — linear
];

pub(crate) fn map_gene(u: f64, (lo, hi, log): (f64, f64, bool)) -> f64 {
    let u = u.clamp(0.0, 1.0);
    if log {
        (lo.ln() + u * (hi.ln() - lo.ln())).exp()
    } else {
        lo + u * (hi - lo)
    }
}

/// Snaps `v` to whole multiples of `unit` (at least one unit) — the
/// quantization step used by [`DesignVector::quantize`] and the batch
/// decoder's column-wise quantization.
pub(crate) fn snap_to_unit(v: f64, unit: f64) -> f64 {
    (v / unit).round().max(1.0) * unit
}

fn unmap_value(v: f64, (lo, hi, log): (f64, f64, bool)) -> f64 {
    let v = v.clamp(lo, hi);
    if log {
        (v.ln() - lo.ln()) / (hi.ln() - lo.ln())
    } else {
        (v - lo) / (hi - lo)
    }
}

impl DesignVector {
    /// Decodes a unit-cube gene vector.
    ///
    /// # Panics
    ///
    /// Panics if `genes.len() != 15`.
    pub fn from_genes(genes: &[f64]) -> Self {
        assert_eq!(genes.len(), NUM_PARAMS, "design vector needs 15 genes");
        let g = |i: usize| map_gene(genes[i], PARAM_RANGES[i]);
        DesignVector {
            w1: g(0),
            l1: g(1),
            w3: g(2),
            l3: g(3),
            w5: g(4),
            l5: g(5),
            w6: g(6),
            l6: g(7),
            w7: g(8),
            l7: g(9),
            itail: g(10),
            cc: g(11),
            cs: g(12),
            cf: g(13),
            cl: g(14),
            vcm_in: 0.9,
        }
    }

    /// Decodes genes for the *drivable-load* formulation: the first 14
    /// genes are the sizing parameters as in
    /// [`from_genes`](DesignVector::from_genes), the 15th maps linearly to
    /// the input common-mode voltage over [`VCM_RANGE`], and the load
    /// capacitance is a placeholder (the evaluator computes the drivable
    /// load and sets it via [`with_cl`](DesignVector::with_cl)).
    ///
    /// # Panics
    ///
    /// Panics if `genes.len() != 15`.
    pub fn from_sizing_genes(genes: &[f64]) -> Self {
        assert_eq!(genes.len(), NUM_PARAMS, "design vector needs 15 genes");
        let mut dv = DesignVector::from_genes(genes);
        let u = genes[14].clamp(0.0, 1.0);
        dv.vcm_in = VCM_RANGE.0 + u * (VCM_RANGE.1 - VCM_RANGE.0);
        dv.cl = CL_RANGE.0;
        dv
    }

    /// Returns a copy with the load capacitance replaced.
    pub fn with_cl(mut self, cl: f64) -> Self {
        self.cl = cl;
        self
    }

    /// Snaps the design to layout-legal values: widths to whole unit
    /// fingers ([`W_UNIT`]), lengths to the [`L_UNIT`] grid, the matched
    /// capacitors to whole unit capacitors ([`C_UNIT`]), and the bias
    /// current to DAC steps ([`I_UNIT`]).
    ///
    /// The drivable-load problem evaluates quantized designs: this is how
    /// the circuit would actually be drawn (unit-finger matching is also
    /// what makes the corner "matching constraints" meaningful), and it
    /// makes the power/load trade-off a *discrete* frontier — small moves
    /// along the front require whole-finger re-sizing.
    pub fn quantize(mut self) -> Self {
        let snap = snap_to_unit;
        self.w1 = snap(self.w1, W_UNIT);
        self.w3 = snap(self.w3, W_UNIT);
        self.w5 = snap(self.w5, W_UNIT);
        self.w6 = snap(self.w6, W_UNIT);
        self.w7 = snap(self.w7, W_UNIT);
        self.l1 = snap(self.l1, L_UNIT);
        self.l3 = snap(self.l3, L_UNIT);
        self.l5 = snap(self.l5, L_UNIT);
        self.l6 = snap(self.l6, L_UNIT);
        self.l7 = snap(self.l7, L_UNIT);
        self.cc = snap(self.cc, C_UNIT);
        self.cs = snap(self.cs, C_UNIT);
        self.cf = snap(self.cf, C_UNIT);
        self.itail = snap(self.itail, I_UNIT);
        self
    }

    /// Encodes back to unit-cube genes (values clamped into range first).
    pub fn to_genes(&self) -> Vec<f64> {
        let vals = [
            self.w1, self.l1, self.w3, self.l3, self.w5, self.l5, self.w6, self.l6, self.w7,
            self.l7, self.itail, self.cc, self.cs, self.cf, self.cl,
        ];
        vals.iter()
            .zip(PARAM_RANGES.iter())
            .map(|(&v, &r)| unmap_value(v, r))
            .collect()
    }

    /// GA bounds for the gene space: the unit cube.
    pub fn gene_bounds() -> Bounds {
        Bounds::uniform(NUM_PARAMS, 0.0, 1.0).expect("static bounds")
    }

    /// Offset-storage capacitor of the CDS network (tied to `cs`).
    pub fn coc(&self) -> f64 {
        self.cs
    }

    /// A hand-crafted reasonable design used by examples and tests: a
    /// moderate-speed, moderate-power point that satisfies the featured
    /// specification at around 1 pF of load.
    pub fn reference() -> Self {
        DesignVector {
            w1: 70e-6,
            l1: 0.5e-6,
            w3: 35e-6,
            l3: 0.7e-6,
            w5: 40e-6,
            l5: 0.6e-6,
            w6: 260e-6,
            l6: 0.32e-6,
            w7: 90e-6,
            l7: 0.45e-6,
            itail: 60e-6,
            cc: 1.2e-12,
            cs: 2.0e-12,
            cf: 2.0e-12,
            cl: 1.0e-12,
            vcm_in: 0.9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gene_round_trip() {
        let genes: Vec<f64> = (0..NUM_PARAMS).map(|i| (i as f64 + 0.5) / 16.0).collect();
        let dv = DesignVector::from_genes(&genes);
        let back = dv.to_genes();
        for (a, b) in genes.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9, "round trip drifted: {a} vs {b}");
        }
    }

    #[test]
    fn extreme_genes_hit_bounds() {
        let lo = DesignVector::from_genes(&[0.0; NUM_PARAMS]);
        let hi = DesignVector::from_genes(&[1.0; NUM_PARAMS]);
        assert!((lo.w1 - 1.0e-6).abs() < 1e-12);
        assert!((hi.w1 - 400.0e-6).abs() < 1e-9);
        assert!((lo.cl - CL_RANGE.0).abs() < 1e-18);
        assert!((hi.cl - CL_RANGE.1).abs() < 1e-18);
    }

    #[test]
    fn cl_mapping_is_linear() {
        let mut genes = vec![0.5; NUM_PARAMS];
        genes[14] = 0.5;
        let dv = DesignVector::from_genes(&genes);
        let expected = 0.5 * (CL_RANGE.0 + CL_RANGE.1);
        assert!((dv.cl - expected).abs() < 1e-18);
    }

    #[test]
    fn log_mapping_midpoint_is_geometric_mean() {
        let mut genes = vec![0.0; NUM_PARAMS];
        genes[10] = 0.5; // itail, range 2µ–500µ
        let dv = DesignVector::from_genes(&genes);
        let gm = (2.0e-6f64 * 500.0e-6).sqrt();
        assert!((dv.itail - gm).abs() / gm < 1e-12);
    }

    #[test]
    #[should_panic(expected = "15 genes")]
    fn wrong_gene_count_panics() {
        let _ = DesignVector::from_genes(&[0.5; 3]);
    }

    #[test]
    fn out_of_range_genes_are_clamped() {
        let dv = DesignVector::from_genes(&[2.0; NUM_PARAMS]);
        assert!((dv.cl - CL_RANGE.1).abs() < 1e-18);
    }

    #[test]
    fn bounds_are_unit_cube() {
        let b = DesignVector::gene_bounds();
        assert_eq!(b.len(), NUM_PARAMS);
        assert!(b.contains(&[0.5; NUM_PARAMS]));
    }

    #[test]
    fn reference_design_within_ranges() {
        let dv = DesignVector::reference();
        let genes = dv.to_genes();
        for (i, g) in genes.iter().enumerate() {
            assert!((0.0..=1.0).contains(g), "gene {i} out of range: {g}");
        }
        assert_eq!(dv.coc(), dv.cs);
    }
}
