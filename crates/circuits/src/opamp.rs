//! DC and small-signal analysis of the standard two-stage Miller op-amp
//! used inside the CDS integrator.
//!
//! Topology (fully differential behaviour is modelled on the half-circuit,
//! as the analytical equations of the paper do):
//!
//! ```text
//!        VDD ────────┬─────────────┬──────────
//!                 M3 ⊣├──┐      M6 ⊣├   (PMOS)
//!                    │  │(mirror)  │
//!          stage-1   ├──┘          ├── V_out ── C_c to stage-1 out
//!            out ────┤             │
//!        M1 ⊣├───────┤  M2 ⊣├──────│   (NMOS diff pair)
//!             └──┬───┘       │  M7 ⊣├  (NMOS sink, gate shared with M5)
//!            M5 ⊣├ (tail)    │      │
//!        VSS ────┴───────────┴──────┴──────────
//! ```
//!
//! The analysis solves the DC bias sequentially (bisection on the eqn (1)
//! model), checks every transistor's operating region, and derives the
//! small-signal quantities the integrator equations need: `g_m1`, `g_m6`,
//! output resistances, node capacitances, DC gain, slew limits, swing,
//! noise and power.

use crate::capacitor::IntegratedCapacitor;
use crate::mosfet::Mosfet;
use crate::process::{DeviceType, Process};
use crate::sizing::DesignVector;
use crate::KT;

/// Reasons a DC solution can fail outright (beyond soft margin violations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DcFault {
    /// The input pair cannot conduct the programmed half-tail current.
    InputPairCurrent,
    /// The tail device cannot conduct the programmed tail current.
    TailCurrent,
    /// The mirror load cannot conduct the half-tail current.
    MirrorCurrent,
    /// The second-stage driver cannot conduct the second-stage current.
    DriverCurrent,
    /// The second-stage sink cannot conduct the second-stage current.
    SinkCurrent,
    /// Bias voltages leave no headroom (a node voltage left its rail
    /// interval).
    Headroom,
}

impl std::fmt::Display for DcFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let text = match self {
            DcFault::InputPairCurrent => "input pair cannot conduct its bias current",
            DcFault::TailCurrent => "tail device cannot conduct the tail current",
            DcFault::MirrorCurrent => "mirror load cannot conduct its bias current",
            DcFault::DriverCurrent => "second-stage driver cannot conduct its current",
            DcFault::SinkCurrent => "second-stage sink cannot conduct its current",
            DcFault::Headroom => "bias point leaves no voltage headroom",
        };
        f.write_str(text)
    }
}

/// Small-signal + DC report of the op-amp at one process point.
#[derive(Debug, Clone, PartialEq)]
pub struct OpampReport {
    /// First-stage input transconductance (S).
    pub gm1: f64,
    /// Second-stage transconductance (S).
    pub gm6: f64,
    /// First-stage output resistance (Ω).
    pub ro1: f64,
    /// Second-stage output resistance (Ω).
    pub ro2: f64,
    /// DC open-loop gain (V/V).
    pub a0: f64,
    /// Effective Miller capacitance `C_c + C_gd6` (F).
    pub cc_eff: f64,
    /// Parasitic capacitance at the first-stage output node (F).
    pub c1: f64,
    /// Parasitic capacitance at the op-amp output node (F).
    pub cout: f64,
    /// Input capacitance of the diff pair, `C_gs1` (F).
    pub cin: f64,
    /// Tail current (A).
    pub itail: f64,
    /// Second-stage quiescent current (A).
    pub i2: f64,
    /// Total quiescent power including the bias branch (W).
    pub power: f64,
    /// Active area of transistors + compensation capacitor (m²).
    pub area: f64,
    /// Differential peak-to-peak output swing (V).
    pub swing: f64,
    /// Internal slew rate `I_tail / C_c,eff` (V/s).
    pub sr_internal: f64,
    /// Worst-case (smallest) saturation margin over all devices (V);
    /// negative when some device has left saturation.
    pub sat_margin: f64,
    /// Systematic input-referred offset from first/second stage current
    /// imbalance (V).
    pub systematic_offset: f64,
    /// Input-referred thermal-noise power spectral density (V²/Hz).
    pub noise_psd: f64,
    /// Hard DC fault, when the bias point could not be established.
    pub fault: Option<DcFault>,
}

impl OpampReport {
    /// DC gain in dB.
    pub fn a0_db(&self) -> f64 {
        20.0 * self.a0.max(1e-30).log10()
    }

    /// `true` when the bias point exists (soft margins may still violate).
    pub fn is_biased(&self) -> bool {
        self.fault.is_none()
    }
}

/// Analyzes the two-stage op-amp described by `dv` in `process`.
///
/// Never panics on bad sizing: hard bias failures are reported through
/// [`OpampReport::fault`] with pessimistic values filled in so constraint
/// machinery can still grade the design.
pub fn analyze(dv: &DesignVector, process: &Process) -> OpampReport {
    let vdd = process.vdd;
    let vcm_in = dv.vcm_in;
    let vcm_out = 0.5 * vdd;

    let m1 = Mosfet::new(DeviceType::Nmos, dv.w1, dv.l1);
    let m3 = Mosfet::new(DeviceType::Pmos, dv.w3, dv.l3);
    let m5 = Mosfet::new(DeviceType::Nmos, dv.w5, dv.l5);
    let m6 = Mosfet::new(DeviceType::Pmos, dv.w6, dv.l6);
    let m7 = Mosfet::new(DeviceType::Nmos, dv.w7, dv.l7);

    let fault_report = |fault: DcFault| pessimistic_report(dv, process, fault);

    let id1 = 0.5 * dv.itail;

    // --- Input pair bias: V_GS1 for I_tail/2 (V_DS assumed mid-supply,
    // refined below).
    let vgs1 = match m1.vgs_for_current(process, id1, 0.5 * vdd, vdd) {
        Some(v) => v,
        None => return fault_report(DcFault::InputPairCurrent),
    };
    // Common-source node of the pair.
    let vs1 = vcm_in - vgs1;
    if vs1 <= 0.02 {
        return fault_report(DcFault::Headroom);
    }

    // --- Tail: V_GS5 for I_tail at V_DS = vs1.
    let vgs5 = match m5.vgs_for_current(process, dv.itail, vs1, vdd) {
        Some(v) => v,
        None => return fault_report(DcFault::TailCurrent),
    };

    // --- Mirror load: diode-connected M3 at I_tail/2; V_GS = V_DS, solved
    // by fixed-point refinement.
    let mut vgs3 = 0.6;
    for _ in 0..2 {
        vgs3 = match m3.vgs_for_current(process, id1, vgs3, vdd) {
            Some(v) => v,
            None => return fault_report(DcFault::MirrorCurrent),
        };
    }
    let v1_ideal = vdd - vgs3; // stage-1 output at perfect balance
    if v1_ideal <= vs1 {
        return fault_report(DcFault::Headroom);
    }

    // --- Second stage current: set by the M5→M7 gate mirror.
    let i2 = dv.itail * (dv.w7 / dv.l7) / (dv.w5 / dv.l5);
    // Equilibrium V_GS6 that conducts I2; stage-1 output settles at
    // VDD − vgs6_actual, the difference to v1_ideal is systematic offset.
    let vgs6_actual = match m6.vgs_for_current(process, i2, vcm_out, vdd) {
        Some(v) => v,
        None => return fault_report(DcFault::DriverCurrent),
    };
    let v1_actual = vdd - vgs6_actual;
    if v1_actual <= vs1 + 0.02 || v1_actual >= vdd - 0.02 {
        return fault_report(DcFault::Headroom);
    }
    // Sink check: M7 must conduct i2 with its mirrored gate voltage.
    if m7.id(process, vgs5, vcm_out) <= 0.0 {
        return fault_report(DcFault::SinkCurrent);
    }

    // --- Operating points.
    let op1 = m1.operating_point(process, vgs1, v1_actual - vs1);
    let op3 = m3.operating_point(process, vgs3, vdd - v1_actual);
    let op5 = m5.operating_point(process, vgs5, vs1);
    let op6 = m6.operating_point(process, vgs6_actual, vdd - vcm_out);
    let op7 = m7.operating_point(process, vgs5, vcm_out);

    // Saturation margins (V): vds − vdsat per device.
    let margins = [
        op1.vds - op1.vdsat,
        op3.vds - op3.vdsat,
        op5.vds - op5.vdsat,
        op6.vds - op6.vdsat,
        op7.vds - op7.vdsat,
    ];
    let sat_margin = margins.iter().copied().fold(f64::INFINITY, f64::min);

    // --- Small-signal quantities.
    let gm1 = op1.gm;
    let gm6 = op6.gm;
    let ro1 = 1.0 / (op1.gds + op3.gds).max(1e-12);
    let ro2 = 1.0 / (op6.gds + op7.gds).max(1e-12);
    let a0 = gm1 * ro1 * gm6 * ro2;

    // Node capacitances.
    let cc_eff = dv.cc + m6.cgd(process);
    let c1 =
        m1.cdb(process) + m1.cgd(process) + m3.cdb(process) + m3.cgd(process) + m6.cgs(process);
    let cout = m6.cdb(process) + m7.cdb(process) + m7.cgd(process);
    let cin = m1.cgs(process);

    // Power: tail + second stage (per side of the differential output uses
    // one second stage; the fully differential amp has two) + bias branch.
    let ibias_ref = 0.5 * dv.itail;
    let power = vdd * (dv.itail + 2.0 * i2 + ibias_ref);

    // Area: diff pair ×2, mirror ×2, tail, bias diode (≈ tail), two output
    // stages, plus the compensation capacitors (×2 for differential).
    let cc_cap = IntegratedCapacitor::new(dv.cc);
    let area = 2.0 * m1.area(process)
        + 2.0 * m3.area(process)
        + 2.0 * m5.area(process)
        + 2.0 * (m6.area(process) + m7.area(process))
        + 2.0 * cc_cap.area(process);

    // Differential peak-to-peak swing limited by the output devices.
    let swing = 2.0 * (vdd - op6.vdsat - op7.vdsat).max(0.0);

    let sr_internal = dv.itail / cc_eff;

    // Systematic offset: imbalance between the ideal mirror voltage and the
    // second-stage equilibrium, referred to the input.
    let a1 = gm1 * ro1;
    let systematic_offset = (vgs3 - vgs6_actual).abs() / a1.max(1.0);

    // Input-referred thermal noise PSD of the first stage (differential):
    // 2 devices × 4kTγ/gm1, plus the mirror contribution scaled by
    // (gm3/gm1)². γ ≈ 2/3 · (short-channel excess 1.5) = 1.
    let gamma = 1.0;
    let noise_psd = 2.0 * 4.0 * KT * gamma / gm1.max(1e-12) * (1.0 + op3.gm / gm1.max(1e-12));

    OpampReport {
        gm1,
        gm6,
        ro1,
        ro2,
        a0,
        cc_eff,
        c1,
        cout,
        cin,
        itail: dv.itail,
        i2,
        power,
        area,
        swing,
        sr_internal,
        sat_margin,
        systematic_offset,
        noise_psd,
        fault: None,
    }
}

/// Builds a worst-case report for a design whose bias point does not exist.
///
/// Power and area are still computed from the programmed currents and
/// geometry so that dominated-ness among infeasible designs remains
/// meaningful; gains and margins take pessimistic values.
fn pessimistic_report(dv: &DesignVector, process: &Process, fault: DcFault) -> OpampReport {
    let vdd = process.vdd;
    let i2 = dv.itail * (dv.w7 / dv.l7) / (dv.w5 / dv.l5);
    let m1 = Mosfet::new(DeviceType::Nmos, dv.w1, dv.l1);
    let cc_cap = IntegratedCapacitor::new(dv.cc);
    OpampReport {
        gm1: 1e-9,
        gm6: 1e-9,
        ro1: 1.0,
        ro2: 1.0,
        a0: 1e-6,
        cc_eff: dv.cc,
        c1: 0.0,
        cout: 0.0,
        cin: m1.cgs(process),
        itail: dv.itail,
        i2,
        power: vdd * (dv.itail + 2.0 * i2 + 0.5 * dv.itail),
        area: 2.0 * cc_cap.area(process),
        swing: 0.0,
        sr_internal: dv.itail / dv.cc.max(1e-15),
        sat_margin: -1.0,
        systematic_offset: 1.0,
        noise_psd: 1.0,
        fault: Some(fault),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Corner;

    fn reference_report() -> OpampReport {
        analyze(&DesignVector::reference(), &Process::nominal())
    }

    #[test]
    fn reference_design_biases() {
        let r = reference_report();
        assert!(r.is_biased(), "fault: {:?}", r.fault);
        assert!(r.sat_margin > 0.0, "sat margin {}", r.sat_margin);
    }

    #[test]
    fn reference_gain_is_realistic() {
        let r = reference_report();
        let db = r.a0_db();
        assert!(
            (50.0..110.0).contains(&db),
            "two-stage gain {db} dB out of the plausible window"
        );
    }

    #[test]
    fn reference_power_sub_milliwatt() {
        let r = reference_report();
        assert!(r.power > 1e-5 && r.power < 3e-3, "power {}", r.power);
    }

    #[test]
    fn reference_swing_supports_1v4() {
        let r = reference_report();
        assert!(r.swing >= 1.4, "swing {}", r.swing);
    }

    #[test]
    fn gm_scales_with_tail_current() {
        let mut dv = DesignVector::reference();
        let lo = analyze(&dv, &Process::nominal());
        dv.itail *= 2.0;
        dv.w1 *= 2.0; // keep the pair in a similar inversion level
        dv.w5 *= 2.0;
        dv.w7 *= 2.0;
        let hi = analyze(&dv, &Process::nominal());
        assert!(hi.is_biased());
        assert!(hi.gm1 > lo.gm1 * 1.5, "gm1 {} -> {}", lo.gm1, hi.gm1);
        assert!(hi.power > lo.power * 1.5);
    }

    #[test]
    fn second_stage_current_follows_mirror_ratio() {
        let dv = DesignVector::reference();
        let r = analyze(&dv, &Process::nominal());
        let expected = dv.itail * (dv.w7 / dv.l7) / (dv.w5 / dv.l5);
        assert!((r.i2 - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn impossible_tail_current_faults() {
        let mut dv = DesignVector::reference();
        dv.itail = 500e-6;
        dv.w5 = 2e-6;
        dv.l5 = 1.5e-6;
        let r = analyze(&dv, &Process::nominal());
        assert!(!r.is_biased());
        assert!(r.sat_margin < 0.0);
        // pessimistic power still reflects the programmed current
        assert!(r.power > 0.0);
    }

    #[test]
    fn tiny_input_pair_faults_or_leaves_headroom() {
        let mut dv = DesignVector::reference();
        dv.w1 = 1e-6;
        dv.l1 = 1.5e-6;
        dv.itail = 400e-6;
        let r = analyze(&dv, &Process::nominal());
        // Needs a huge VGS1 -> source node collapses or current unreachable.
        assert!(!r.is_biased() || r.sat_margin < 0.0);
    }

    #[test]
    fn slew_rate_definition() {
        let r = reference_report();
        assert!((r.sr_internal - r.itail / r.cc_eff).abs() / r.sr_internal < 1e-12);
    }

    #[test]
    fn corners_move_the_gain() {
        let dv = DesignVector::reference();
        let nominal = analyze(&dv, &Process::nominal());
        let ss = analyze(&dv, &Process::nominal().at_corner(Corner::Ss));
        let ff = analyze(&dv, &Process::nominal().at_corner(Corner::Ff));
        assert!(ss.is_biased() && ff.is_biased());
        assert_ne!(nominal.a0, ss.a0);
        assert_ne!(nominal.a0, ff.a0);
    }

    #[test]
    fn noise_decreases_with_gm() {
        let mut dv = DesignVector::reference();
        let lo = analyze(&dv, &Process::nominal());
        dv.itail *= 3.0;
        dv.w1 *= 3.0;
        dv.w5 *= 3.0;
        dv.w7 *= 3.0;
        let hi = analyze(&dv, &Process::nominal());
        assert!(hi.noise_psd < lo.noise_psd);
    }

    #[test]
    fn report_fields_are_finite() {
        let r = reference_report();
        for (name, v) in [
            ("gm1", r.gm1),
            ("gm6", r.gm6),
            ("a0", r.a0),
            ("c1", r.c1),
            ("cout", r.cout),
            ("power", r.power),
            ("area", r.area),
            ("swing", r.swing),
            ("noise", r.noise_psd),
        ] {
            assert!(v.is_finite() && v >= 0.0, "{name} = {v}");
        }
    }

    #[test]
    fn area_grows_with_devices_and_caps() {
        let mut dv = DesignVector::reference();
        let base = analyze(&dv, &Process::nominal()).area;
        dv.w6 *= 2.0;
        dv.cc *= 2.0;
        let bigger = analyze(&dv, &Process::nominal()).area;
        assert!(bigger > base);
    }
}
