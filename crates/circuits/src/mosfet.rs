//! Deep-submicron MOSFET model implementing eqn (1) of the reproduced
//! paper:
//!
//! ```text
//!        1        W   (V_GS − V_T)²
//! I_D = --- µC_ox --- ------------------------- (1 + λ V_DS) ·
//!        2        L   1 − (V_GS − V_T)/(E_sat·L)
//!
//!                       1
//!       · ---------------------------------------------------
//!         1 + θ₁(V_GS + V_T − V_K)^(1/3) + θ₂(V_GS + V_T − V_K)^n
//! ```
//!
//! with `n = 1` for NMOS and `n = 2` for PMOS. The velocity-saturation term
//! is used in the numerically robust form
//! `(V_ov)² / (1 + V_ov/(E_sat·L))` (equivalent first-order behaviour,
//! no pole at `V_ov = E_sat·L`), which is the standard way this family of
//! models is implemented. Channel-length modulation applies in saturation;
//! the triode region is modelled as the usual parabolic interpolation that
//! is current-continuous at `V_DS = V_Dsat`.
//!
//! Voltages are *magnitudes*: callers pass `|V_GS|`, `|V_DS|` for PMOS.

use crate::process::{DeviceType, Process, TransistorParams};

/// Thermal voltage `kT/q` at the nominal temperature (V).
pub const V_THERMAL: f64 = 0.0259;

/// Subthreshold slope factor `n` of the EKV-style inversion interpolation.
pub const SLOPE_FACTOR: f64 = 1.3;

/// Smooth effective overdrive implementing the EKV moderate/weak-inversion
/// interpolation: `V_ov,eff = 2nV_T · ln(1 + exp(V_ov / 2nV_T))`.
///
/// In strong inversion (`V_ov ≫ 2nV_T`) this is `V_ov`; below threshold it
/// decays exponentially, which caps the achievable `g_m/I_D` at the
/// physical subthreshold limit `1/(nV_T)` instead of letting the square law
/// promise unbounded transconductance efficiency at vanishing overdrive.
pub fn effective_overdrive(vov: f64) -> f64 {
    let scale = 2.0 * SLOPE_FACTOR * V_THERMAL;
    let u = vov / scale;
    // Numerically stable softplus.
    let q = if u > 30.0 {
        u
    } else if u < -30.0 {
        u.exp()
    } else {
        u.exp().ln_1p()
    };
    scale * q
}

/// Operating regions of a MOSFET.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// `V_GS <= V_T`: no channel.
    Cutoff,
    /// `V_DS < V_Dsat`: resistive channel.
    Triode,
    /// `V_DS >= V_Dsat`: current source behaviour.
    Saturation,
}

/// A sized transistor of one polarity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mosfet {
    /// Channel width (m).
    pub w: f64,
    /// Channel length (m).
    pub l: f64,
    /// Polarity.
    pub device: DeviceType,
}

/// Full DC operating point of a [`Mosfet`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Drain current magnitude (A).
    pub id: f64,
    /// Transconductance ∂I_D/∂V_GS (S).
    pub gm: f64,
    /// Output conductance ∂I_D/∂V_DS (S).
    pub gds: f64,
    /// Saturation voltage (V).
    pub vdsat: f64,
    /// Region of operation.
    pub region: Region,
    /// Gate-source voltage magnitude used (V).
    pub vgs: f64,
    /// Drain-source voltage magnitude used (V).
    pub vds: f64,
}

impl Mosfet {
    /// Creates a sized device.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `l` is not strictly positive.
    pub fn new(device: DeviceType, w: f64, l: f64) -> Self {
        assert!(w > 0.0 && l > 0.0, "device dimensions must be positive");
        Mosfet { w, l, device }
    }

    fn params<'p>(&self, process: &'p Process) -> &'p TransistorParams {
        process.transistor(self.device)
    }

    /// Threshold voltage magnitude in `process` (V).
    pub fn vt(&self, process: &Process) -> f64 {
        self.params(process).vt0
    }

    /// Saturation voltage for a gate overdrive `vov = V_GS − V_T` (V):
    /// the velocity-saturation-reduced effective overdrive, floored at the
    /// weak-inversion saturation voltage `≈ 3V_T`.
    pub fn vdsat(&self, process: &Process, vov: f64) -> f64 {
        let vov_eff = effective_overdrive(vov);
        let esat_l = self.params(process).esat * self.l;
        (vov_eff / (1.0 + vov_eff / esat_l)).max(3.0 * V_THERMAL)
    }

    /// Saturation drain current per eqn (1) with the EKV inversion
    /// interpolation, *without* channel-length modulation (A).
    fn id_sat_core(&self, process: &Process, vgs: f64) -> f64 {
        let p = self.params(process);
        let vov = vgs - p.vt0;
        let vov_eff = effective_overdrive(vov);
        if vov_eff <= 0.0 {
            return 0.0;
        }
        let esat_l = p.esat * self.l;
        let velocity = 1.0 + vov_eff / esat_l;
        // Mobility degradation: the argument V_GS + V_T − V_K of the paper.
        let x = (vgs + p.vt0 - p.vk).max(0.0);
        let n = self.device.mobility_exponent();
        let mobility = 1.0 + p.theta1 * x.cbrt() + p.theta2 * x.powf(n);
        0.5 * p.kp * (self.w / self.l) * vov_eff * vov_eff / velocity / mobility
    }

    /// Effective channel-length-modulation coefficient (V⁻¹), scaled with
    /// drawn length.
    fn lambda_eff(&self, process: &Process) -> f64 {
        self.params(process).lambda / (self.l / 1e-6)
    }

    /// DC operating point at `(V_GS, V_DS)` magnitudes.
    ///
    /// Current is continuous across the triode/saturation boundary;
    /// derivatives (`gm`, `gds`) are obtained by central differences of the
    /// analytical current, which keeps them consistent with `id` by
    /// construction.
    pub fn operating_point(&self, process: &Process, vgs: f64, vds: f64) -> OperatingPoint {
        let id = self.id(process, vgs, vds);
        let p = self.params(process);
        let vov = vgs - p.vt0;
        let vdsat = self.vdsat(process, vov);
        let region = if vov <= 0.0 {
            Region::Cutoff
        } else if vds < vdsat {
            Region::Triode
        } else {
            Region::Saturation
        };
        let h = 1e-6;
        let gm = (self.id(process, vgs + h, vds) - self.id(process, vgs - h, vds)) / (2.0 * h);
        let gds = (self.id(process, vgs, vds + h) - self.id(process, vgs, (vds - h).max(0.0)))
            / (vds + h - (vds - h).max(0.0));
        OperatingPoint {
            id,
            gm: gm.max(0.0),
            gds: gds.max(0.0),
            vdsat,
            region,
            vgs,
            vds,
        }
    }

    /// Drain current magnitude at `(V_GS, V_DS)` magnitudes (A).
    ///
    /// Below threshold the EKV interpolation yields an exponentially
    /// decaying (but nonzero) subthreshold current.
    pub fn id(&self, process: &Process, vgs: f64, vds: f64) -> f64 {
        let p = self.params(process);
        let vov = vgs - p.vt0;
        if vds <= 0.0 {
            return 0.0;
        }
        let vdsat = self.vdsat(process, vov);
        let lambda = self.lambda_eff(process);
        let core = self.id_sat_core(process, vgs);
        if vds >= vdsat {
            core * (1.0 + lambda * (vds - vdsat))
        } else {
            // Parabolic triode interpolation, current-continuous at vdsat.
            let u = vds / vdsat;
            core * u * (2.0 - u)
        }
    }

    /// Solves for the `V_GS` magnitude that conducts `target_id` in
    /// saturation at `vds` (bisection; `None` when the device cannot carry
    /// the current below `vgs_max`).
    pub fn vgs_for_current(
        &self,
        process: &Process,
        target_id: f64,
        vds: f64,
        vgs_max: f64,
    ) -> Option<f64> {
        if target_id <= 0.0 {
            return Some(self.vt(process));
        }
        let f = |vgs: f64| self.id(process, vgs, vds) - target_id;
        let lo0 = 0.01; // well into subthreshold
        if f(vgs_max) < 0.0 {
            return None;
        }
        if f(lo0) > 0.0 {
            // Even deep subthreshold leaks more than the target: report the
            // smallest representable bias.
            return Some(lo0);
        }
        let (mut lo, mut hi) = (lo0, vgs_max);
        // 44 bisection steps: |hi - lo| < 2 V / 2^44 ~ 1e-13 V, far below
        // any physical meaning, at half the cost of excess precision.
        for _ in 0..44 {
            let mid = 0.5 * (lo + hi);
            if f(mid) < 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(0.5 * (lo + hi))
    }

    /// Gate-source capacitance in saturation:
    /// `(2/3)·W·L·C_ox + C_ov·W` (F).
    pub fn cgs(&self, process: &Process) -> f64 {
        (2.0 / 3.0) * self.w * self.l * process.cox + self.params(process).c_overlap * self.w
    }

    /// Gate-drain capacitance in saturation (overlap only) (F).
    pub fn cgd(&self, process: &Process) -> f64 {
        self.params(process).c_overlap * self.w
    }

    /// Drain-bulk junction capacitance: area + sidewall terms of the drain
    /// diffusion (F).
    pub fn cdb(&self, process: &Process) -> f64 {
        let p = self.params(process);
        p.cj * self.w * p.l_diff + p.cjsw * (self.w + 2.0 * p.l_diff)
    }

    /// Active gate area `W·L` (m²); diffusions add `2·W·L_diff`.
    pub fn area(&self, process: &Process) -> f64 {
        self.w * self.l + 2.0 * self.w * self.params(process).l_diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Process;

    fn nmos() -> Mosfet {
        Mosfet::new(DeviceType::Nmos, 10e-6, 0.5e-6)
    }

    fn pmos() -> Mosfet {
        Mosfet::new(DeviceType::Pmos, 20e-6, 0.5e-6)
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn rejects_zero_width() {
        let _ = Mosfet::new(DeviceType::Nmos, 0.0, 1e-6);
    }

    #[test]
    fn subthreshold_current_is_small_and_decays() {
        let p = Process::nominal();
        let m = nmos();
        // 150 mV below threshold: orders of magnitude below the on-current.
        let sub = m.id(&p, 0.3, 0.9);
        let on = m.id(&p, 0.9, 0.9);
        assert!(sub > 0.0 && sub < on * 1e-2, "sub {sub} vs on {on}");
        // Exponential decay: each 100 mV below VT costs > 10x.
        let deeper = m.id(&p, 0.2, 0.9);
        assert!(deeper < sub / 10.0);
        let op = m.operating_point(&p, 0.3, 0.9);
        assert_eq!(op.region, Region::Cutoff);
    }

    #[test]
    fn gm_over_id_capped_at_subthreshold_limit() {
        let p = Process::nominal();
        // Huge W/L at tiny current: the square law would promise unbounded
        // gm/id; the EKV interpolation must cap it near 1/(n·V_T) ≈ 30.
        let m = Mosfet::new(DeviceType::Nmos, 400e-6, 0.18e-6);
        let vgs = m.vgs_for_current(&p, 1e-6, 0.9, 1.8).expect("solvable");
        let op = m.operating_point(&p, vgs, 0.9);
        let gm_over_id = op.gm / op.id;
        assert!(
            gm_over_id < 1.05 / (SLOPE_FACTOR * V_THERMAL),
            "gm/id {gm_over_id} exceeds the subthreshold limit"
        );
        assert!(gm_over_id > 15.0, "gm/id {gm_over_id} suspiciously low");
    }

    #[test]
    fn current_increases_with_vgs() {
        let p = Process::nominal();
        let m = nmos();
        let i1 = m.id(&p, 0.7, 0.9);
        let i2 = m.id(&p, 0.9, 0.9);
        assert!(i2 > i1 && i1 > 0.0);
    }

    #[test]
    fn current_scales_with_aspect_ratio() {
        let p = Process::nominal();
        let narrow = Mosfet::new(DeviceType::Nmos, 5e-6, 0.5e-6);
        let wide = Mosfet::new(DeviceType::Nmos, 10e-6, 0.5e-6);
        let (i1, i2) = (narrow.id(&p, 0.8, 0.9), wide.id(&p, 0.8, 0.9));
        assert!(
            (i2 / i1 - 2.0).abs() < 1e-9,
            "width scaling broken: {}",
            i2 / i1
        );
    }

    #[test]
    fn velocity_saturation_compresses_current() {
        // A short channel must deliver *less* than (W/L)-scaled long-channel
        // current at the same overdrive.
        let p = Process::nominal();
        let short = Mosfet::new(DeviceType::Nmos, 1.8e-6, 0.18e-6);
        let long = Mosfet::new(DeviceType::Nmos, 18e-6, 1.8e-6);
        // Same W/L = 10; compare at the same bias.
        let i_short = short.id(&p, 0.9, 1.2);
        let i_long = long.id(&p, 0.9, 1.2);
        assert!(
            i_short < i_long,
            "short-channel current {i_short} should be compressed vs {i_long}"
        );
    }

    #[test]
    fn continuity_at_saturation_boundary() {
        let p = Process::nominal();
        let m = nmos();
        let vgs = 0.9;
        let vdsat = m.vdsat(&p, vgs - m.vt(&p));
        let below = m.id(&p, vgs, vdsat * (1.0 - 1e-9));
        let above = m.id(&p, vgs, vdsat * (1.0 + 1e-9));
        assert!(
            ((below - above) / above).abs() < 1e-6,
            "current discontinuous at vdsat: {below} vs {above}"
        );
    }

    #[test]
    fn triode_current_below_saturation_current() {
        let p = Process::nominal();
        let m = nmos();
        let vgs = 0.9;
        let vdsat = m.vdsat(&p, vgs - m.vt(&p));
        assert!(m.id(&p, vgs, 0.3 * vdsat) < m.id(&p, vgs, vdsat));
    }

    #[test]
    fn lambda_gives_finite_output_conductance() {
        let p = Process::nominal();
        let m = nmos();
        let op = m.operating_point(&p, 0.9, 1.2);
        assert_eq!(op.region, Region::Saturation);
        assert!(op.gds > 0.0);
        assert!(op.gm > op.gds * 10.0, "gm/gds should be >> 1 in saturation");
    }

    #[test]
    fn longer_channel_reduces_lambda_effect() {
        let p = Process::nominal();
        let short = Mosfet::new(DeviceType::Nmos, 10e-6, 0.2e-6);
        let long = Mosfet::new(DeviceType::Nmos, 10e-6, 1.0e-6);
        let gds_ratio_short = {
            let op = short.operating_point(&p, 0.9, 1.2);
            op.gds / op.id
        };
        let gds_ratio_long = {
            let op = long.operating_point(&p, 0.9, 1.2);
            op.gds / op.id
        };
        assert!(gds_ratio_long < gds_ratio_short);
    }

    #[test]
    fn vdsat_below_overdrive() {
        let p = Process::nominal();
        let m = Mosfet::new(DeviceType::Nmos, 2e-6, 0.18e-6);
        let vov = 0.4;
        let vdsat = m.vdsat(&p, vov);
        assert!(vdsat > 0.0 && vdsat < vov);
    }

    #[test]
    fn pmos_is_weaker_than_nmos() {
        let p = Process::nominal();
        let n = nmos();
        let pm = Mosfet::new(DeviceType::Pmos, 10e-6, 0.5e-6);
        assert!(n.id(&p, 0.9, 0.9) > pm.id(&p, 0.9, 0.9));
    }

    #[test]
    fn vgs_for_current_round_trips() {
        let p = Process::nominal();
        let m = nmos();
        let target = 50e-6;
        let vgs = m.vgs_for_current(&p, target, 0.9, 1.8).expect("solvable");
        let achieved = m.id(&p, vgs, 0.9);
        assert!(
            ((achieved - target) / target).abs() < 1e-6,
            "bisection inaccurate: {achieved} vs {target}"
        );
    }

    #[test]
    fn vgs_for_current_detects_impossible() {
        let p = Process::nominal();
        let tiny = Mosfet::new(DeviceType::Nmos, 0.5e-6, 2e-6);
        assert!(tiny.vgs_for_current(&p, 10e-3, 0.9, 1.8).is_none());
    }

    #[test]
    fn vgs_for_zero_current_is_vt() {
        let p = Process::nominal();
        let m = nmos();
        assert_eq!(m.vgs_for_current(&p, 0.0, 0.9, 1.8), Some(m.vt(&p)));
    }

    #[test]
    fn capacitances_scale_with_geometry() {
        let p = Process::nominal();
        let small = Mosfet::new(DeviceType::Nmos, 2e-6, 0.2e-6);
        let big = Mosfet::new(DeviceType::Nmos, 20e-6, 0.2e-6);
        assert!(big.cgs(&p) > small.cgs(&p));
        assert!(big.cgd(&p) > small.cgd(&p));
        assert!(big.cdb(&p) > small.cdb(&p));
        assert!(big.area(&p) > small.area(&p));
        assert!((big.cgd(&p) / small.cgd(&p) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mobility_degradation_reduces_current_at_high_gate_drive() {
        // Compare against the same model with θ1 = θ2 = 0.
        let mut p_clean = Process::nominal();
        p_clean.nmos.theta1 = 0.0;
        p_clean.nmos.theta2 = 0.0;
        let p = Process::nominal();
        let m = nmos();
        let degraded = m.id(&p, 1.6, 1.2);
        let clean = m.id(&p_clean, 1.6, 1.2);
        assert!(degraded < clean);
        // and the gap must widen with VGS
        let gap_low = m.id(&p_clean, 0.8, 1.2) / m.id(&p, 0.8, 1.2);
        let gap_high = clean / degraded;
        assert!(gap_high > gap_low);
    }

    #[test]
    fn pmos_mobility_exponent_bites_harder() {
        // With equal θ2, the PMOS n = 2 term must degrade faster in VGS
        // than the NMOS n = 1 term. Compare normalized currents.
        let mut p = Process::nominal();
        p.pmos.kp = p.nmos.kp; // equalize strength
        p.pmos.esat = p.nmos.esat;
        p.pmos.theta1 = p.nmos.theta1;
        p.pmos.theta2 = p.nmos.theta2;
        p.pmos.lambda = p.nmos.lambda;
        let n = nmos();
        let pm = Mosfet::new(DeviceType::Pmos, 10e-6, 0.5e-6);
        let ratio_low = pm.id(&p, 0.8, 0.9) / n.id(&p, 0.8, 0.9);
        let ratio_high = pm.id(&p, 1.7, 0.9) / n.id(&p, 1.7, 0.9);
        assert!(ratio_high < ratio_low);
    }

    #[test]
    fn operating_point_reports_triode() {
        let p = Process::nominal();
        let m = pmos();
        let vdsat = m.vdsat(&p, 0.9 - m.vt(&p));
        let op = m.operating_point(&p, 0.9, vdsat * 0.5);
        assert_eq!(op.region, Region::Triode);
    }
}
