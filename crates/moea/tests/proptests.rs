//! Property-based tests of the moea substrate invariants.

use moea::dominance::{constrained_dominates, dominates, Dominance};
use moea::evaluation::Evaluation;
use moea::hypervolume::{hypervolume_2d, staircase_area, staircase_volume};
use moea::individual::Individual;
use moea::operators::{random_vector, PolynomialMutation, Sbx, Variation};
use moea::problem::Bounds;
use moea::sorting::{environmental_selection, fast_non_dominated_sort, rank_and_crowd};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn finite_objs() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3f64..1e3, 2)
}

fn point_set(max: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(finite_objs(), 1..max)
}

fn positive_points(max: usize) -> impl Strategy<Value = Vec<[f64; 2]>> {
    prop::collection::vec(
        (0.0f64..100.0, 0.0f64..100.0).prop_map(|(a, b)| [a, b]),
        0..max,
    )
}

proptest! {
    #[test]
    fn dominance_is_asymmetric(a in finite_objs(), b in finite_objs()) {
        let ab = dominates(&a, &b);
        let ba = dominates(&b, &a);
        prop_assert_eq!(ab, ba.flip());
        // never both strict in the same direction
        prop_assert!(!(ab == Dominance::First && ba == Dominance::First));
    }

    #[test]
    fn dominance_is_irreflexive(a in finite_objs()) {
        prop_assert_eq!(dominates(&a, &a), Dominance::Neither);
    }

    #[test]
    fn dominance_is_transitive(a in finite_objs(), b in finite_objs(), c in finite_objs()) {
        if dominates(&a, &b) == Dominance::First && dominates(&b, &c) == Dominance::First {
            prop_assert_eq!(dominates(&a, &c), Dominance::First);
        }
    }

    #[test]
    fn sort_assigns_every_rank_and_partitions(pop_objs in point_set(40)) {
        let mut pop: Vec<Individual> = pop_objs
            .iter()
            .map(|o| Individual::new(vec![0.0], Evaluation::unconstrained(o.clone())))
            .collect();
        let fronts = fast_non_dominated_sort(&mut pop);
        let total: usize = fronts.iter().map(Vec::len).sum();
        prop_assert_eq!(total, pop.len());
        // each member's rank matches its front index
        for (r, front) in fronts.iter().enumerate() {
            for &i in front {
                prop_assert_eq!(pop[i].rank, r);
            }
        }
        // no member of front r+1 may dominate a member of front r
        for r in 0..fronts.len().saturating_sub(1) {
            for &i in &fronts.as_slice()[r] {
                for &j in &fronts.as_slice()[r + 1] {
                    prop_assert_ne!(
                        constrained_dominates(&pop[j], &pop[i]),
                        Dominance::First
                    );
                }
            }
        }
        // within a front, no member dominates another
        for front in fronts.iter() {
            for &i in front {
                for &j in front {
                    if i != j {
                        prop_assert_ne!(
                            constrained_dominates(&pop[i], &pop[j]),
                            Dominance::First
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn crowding_extremes_are_infinite(pop_objs in point_set(30)) {
        let mut pop: Vec<Individual> = pop_objs
            .iter()
            .map(|o| Individual::new(vec![0.0], Evaluation::unconstrained(o.clone())))
            .collect();
        let fronts = rank_and_crowd(&mut pop);
        for front in fronts.iter() {
            // the member with minimal objective-0 must have infinite crowding
            let min0 = front
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    pop[a].objective(0)
                        .partial_cmp(&pop[b].objective(0))
                        .unwrap()
                })
                .unwrap();
            prop_assert!(pop[min0].crowding.is_infinite());
        }
    }

    #[test]
    fn environmental_selection_respects_target(
        pop_objs in point_set(50),
        target in 1usize..30,
    ) {
        let pop: Vec<Individual> = pop_objs
            .iter()
            .map(|o| Individual::new(vec![0.0], Evaluation::unconstrained(o.clone())))
            .collect();
        let n = pop.len();
        let survivors = environmental_selection(pop, target);
        prop_assert_eq!(survivors.len(), target.min(n));
    }

    #[test]
    fn environmental_selection_keeps_best_ranks(pop_objs in point_set(40)) {
        let pop: Vec<Individual> = pop_objs
            .iter()
            .map(|o| Individual::new(vec![0.0], Evaluation::unconstrained(o.clone())))
            .collect();
        let n = pop.len();
        let target = (n / 2).max(1);
        let survivors = environmental_selection(pop.clone(), target);
        let max_surviving_rank = survivors.iter().map(|s| s.rank).max().unwrap();
        // Recompute full ranking; every individual strictly better-ranked
        // than the worst surviving rank must have survived.
        let mut full = pop;
        let fronts = fast_non_dominated_sort(&mut full);
        let better: usize = fronts
            .iter()
            .take(max_surviving_rank)
            .map(Vec::len)
            .sum();
        prop_assert!(better <= target);
    }

    #[test]
    fn sbx_respects_bounds(
        seed in 0u64..1000,
        eta in 1.0f64..30.0,
        p1 in prop::collection::vec(-0.9f64..0.9, 4),
        p2 in prop::collection::vec(-0.9f64..0.9, 4),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bounds = Bounds::uniform(4, -1.0, 1.0).unwrap();
        let sbx = Sbx::new(eta, 1.0);
        let (c1, c2) = sbx.cross(&mut rng, &p1, &p2, &bounds);
        prop_assert!(bounds.contains(&c1));
        prop_assert!(bounds.contains(&c2));
    }

    #[test]
    fn mutation_respects_bounds(
        seed in 0u64..1000,
        eta in 1.0f64..30.0,
        x in prop::collection::vec(-0.999f64..0.999, 6),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bounds = Bounds::uniform(6, -1.0, 1.0).unwrap();
        let op = PolynomialMutation::new(eta, 1.0);
        let mut y = x;
        op.mutate(&mut rng, &mut y, &bounds);
        prop_assert!(bounds.contains(&y));
    }

    #[test]
    fn variation_offspring_in_bounds(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bounds = Bounds::uniform(15, 0.0, 1.0).unwrap();
        let v = Variation::standard(15);
        let p1 = random_vector(&mut rng, &bounds);
        let p2 = random_vector(&mut rng, &bounds);
        let (c1, c2) = v.offspring(&mut rng, &p1, &p2, &bounds);
        prop_assert!(bounds.contains(&c1));
        prop_assert!(bounds.contains(&c2));
    }

    #[test]
    fn staircase_is_permutation_invariant(pts in positive_points(12)) {
        let a = staircase_area(&pts);
        let mut rev = pts.clone();
        rev.reverse();
        let b = staircase_area(&rev);
        prop_assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()));
    }

    #[test]
    fn staircase_monotone_under_union(pts in positive_points(12), extra in positive_points(4)) {
        let base = staircase_area(&pts);
        let mut bigger = pts.clone();
        bigger.extend_from_slice(&extra);
        prop_assert!(staircase_area(&bigger) + 1e-9 >= base);
    }

    #[test]
    fn staircase_bounded_by_bounding_box(pts in positive_points(12)) {
        let area = staircase_area(&pts);
        let max_x = pts.iter().map(|p| p[0]).fold(0.0, f64::max);
        let max_y = pts.iter().map(|p| p[1]).fold(0.0, f64::max);
        prop_assert!(area <= max_x * max_y + 1e-9);
        // and at least as large as any single box
        for p in &pts {
            prop_assert!(area + 1e-9 >= p[0] * p[1]);
        }
    }

    #[test]
    fn staircase_volume_agrees_with_area(pts in positive_points(10)) {
        let as_vec: Vec<Vec<f64>> = pts.iter().map(|p| vec![p[0], p[1]]).collect();
        let a = staircase_area(&pts);
        let v = staircase_volume(&as_vec);
        prop_assert!((a - v).abs() <= 1e-9 * (1.0 + a.abs()));
    }

    #[test]
    fn hv2d_dominated_points_are_free(pts in positive_points(10)) {
        let reference = [120.0, 120.0];
        let base = hypervolume_2d(&pts, reference);
        // add a point dominated by the first point (if any)
        if let Some(p) = pts.first() {
            let mut plus = pts.clone();
            plus.push([p[0] + 1.0, p[1] + 1.0]);
            let with_dominated = hypervolume_2d(&plus, reference);
            prop_assert!((with_dominated - base).abs() <= 1e-9 * (1.0 + base));
        }
    }

    #[test]
    fn hv2d_monotone_under_improvement(pts in positive_points(10)) {
        let reference = [120.0, 120.0];
        let base = hypervolume_2d(&pts, reference);
        if let Some(p) = pts.first() {
            let mut improved = pts.clone();
            improved.push([p[0] * 0.5, p[1] * 0.5]);
            let better = hypervolume_2d(&improved, reference);
            prop_assert!(better + 1e-9 >= base);
        }
    }
}
