//! Individuals (decision vector + evaluation + GA bookkeeping) and
//! population containers.

use crate::evaluation::Evaluation;

/// One member of a GA population: a decision vector, its evaluation, and
/// the bookkeeping fields written by ranking/diversity procedures.
///
/// The bookkeeping fields (`rank`, `crowding`) are *outputs* of
/// [`sorting`](crate::sorting) procedures; they are plain public data in the
/// C-struct spirit because every algorithm layer reads and rewrites them.
#[derive(Debug, Clone)]
pub struct Individual {
    /// Decision variables (always inside the problem bounds).
    pub genes: Vec<f64>,
    /// Evaluation of `genes`.
    pub evaluation: Evaluation,
    /// Non-domination rank; 0 is the best front. `usize::MAX` = unranked.
    pub rank: usize,
    /// Crowding distance within its front (`f64::INFINITY` at extremes).
    pub crowding: f64,
}

impl Individual {
    /// Creates an unranked individual from genes and their evaluation.
    pub fn new(genes: Vec<f64>, evaluation: Evaluation) -> Self {
        Individual {
            genes,
            evaluation,
            rank: usize::MAX,
            crowding: 0.0,
        }
    }

    /// Minimized objective values.
    pub fn objectives(&self) -> &[f64] {
        self.evaluation.objectives()
    }

    /// Single objective value by index.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn objective(&self, k: usize) -> f64 {
        self.evaluation.objectives()[k]
    }

    /// `true` when all constraints are satisfied.
    pub fn is_feasible(&self) -> bool {
        self.evaluation.is_feasible()
    }

    /// Sum of constraint violations (0 when feasible).
    pub fn total_violation(&self) -> f64 {
        self.evaluation.total_violation()
    }

    /// Resets bookkeeping to the unranked state.
    pub fn clear_ranking(&mut self) {
        self.rank = usize::MAX;
        self.crowding = 0.0;
    }
}

/// A population is an owned, ordered collection of individuals.
///
/// Plain `Vec<Individual>` with a few domain helpers; it derefs nowhere —
/// use [`as_slice`](Population::as_slice) / indexing / iteration.
#[derive(Debug, Clone, Default)]
pub struct Population {
    members: Vec<Individual>,
}

impl Population {
    /// Creates an empty population.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a population with preallocated capacity.
    pub fn with_capacity(n: usize) -> Self {
        Population {
            members: Vec::with_capacity(n),
        }
    }

    /// Wraps an existing vector of individuals.
    pub fn from_members(members: Vec<Individual>) -> Self {
        Population { members }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when there are no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Adds a member.
    pub fn push(&mut self, ind: Individual) {
        self.members.push(ind);
    }

    /// Borrows the members as a slice.
    pub fn as_slice(&self) -> &[Individual] {
        &self.members
    }

    /// Borrows the members mutably.
    pub fn as_mut_slice(&mut self) -> &mut [Individual] {
        &mut self.members
    }

    /// Iterates over members.
    pub fn iter(&self) -> std::slice::Iter<'_, Individual> {
        self.members.iter()
    }

    /// Iterates mutably over members.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, Individual> {
        self.members.iter_mut()
    }

    /// Consumes the population, returning the member vector.
    pub fn into_members(self) -> Vec<Individual> {
        self.members
    }

    /// Count of feasible members.
    pub fn feasible_count(&self) -> usize {
        self.members.iter().filter(|m| m.is_feasible()).count()
    }

    /// Objective matrix view: one row (vec) per member.
    pub fn objective_rows(&self) -> Vec<Vec<f64>> {
        self.members
            .iter()
            .map(|m| m.objectives().to_vec())
            .collect()
    }
}

impl std::ops::Index<usize> for Population {
    type Output = Individual;
    fn index(&self, i: usize) -> &Individual {
        &self.members[i]
    }
}

impl std::ops::IndexMut<usize> for Population {
    fn index_mut(&mut self, i: usize) -> &mut Individual {
        &mut self.members[i]
    }
}

impl FromIterator<Individual> for Population {
    fn from_iter<I: IntoIterator<Item = Individual>>(iter: I) -> Self {
        Population {
            members: iter.into_iter().collect(),
        }
    }
}

impl Extend<Individual> for Population {
    fn extend<I: IntoIterator<Item = Individual>>(&mut self, iter: I) {
        self.members.extend(iter);
    }
}

impl IntoIterator for Population {
    type Item = Individual;
    type IntoIter = std::vec::IntoIter<Individual>;
    fn into_iter(self) -> Self::IntoIter {
        self.members.into_iter()
    }
}

impl<'a> IntoIterator for &'a Population {
    type Item = &'a Individual;
    type IntoIter = std::slice::Iter<'a, Individual>;
    fn into_iter(self) -> Self::IntoIter {
        self.members.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ind(objs: Vec<f64>, violation: f64) -> Individual {
        Individual::new(
            vec![0.0],
            Evaluation::new(
                objs,
                if violation > 0.0 {
                    vec![violation]
                } else {
                    vec![0.0]
                },
            ),
        )
    }

    #[test]
    fn new_individual_is_unranked() {
        let i = ind(vec![1.0, 2.0], 0.0);
        assert_eq!(i.rank, usize::MAX);
        assert_eq!(i.crowding, 0.0);
    }

    #[test]
    fn clear_ranking_resets_bookkeeping() {
        let mut i = ind(vec![1.0], 0.0);
        i.rank = 3;
        i.crowding = 7.5;
        i.clear_ranking();
        assert_eq!(i.rank, usize::MAX);
        assert_eq!(i.crowding, 0.0);
    }

    #[test]
    fn population_collects_and_counts_feasible() {
        let pop: Population = vec![ind(vec![1.0], 0.0), ind(vec![2.0], 0.3)]
            .into_iter()
            .collect();
        assert_eq!(pop.len(), 2);
        assert_eq!(pop.feasible_count(), 1);
    }

    #[test]
    fn population_extend_and_index() {
        let mut pop = Population::new();
        pop.extend(vec![ind(vec![1.0], 0.0)]);
        pop.push(ind(vec![2.0], 0.0));
        assert_eq!(pop[1].objective(0), 2.0);
        pop[0].rank = 0;
        assert_eq!(pop[0].rank, 0);
    }

    #[test]
    fn objective_rows_match_members() {
        let pop: Population = vec![ind(vec![1.0, 4.0], 0.0), ind(vec![2.0, 3.0], 0.0)]
            .into_iter()
            .collect();
        assert_eq!(pop.objective_rows(), vec![vec![1.0, 4.0], vec![2.0, 3.0]]);
    }
}
