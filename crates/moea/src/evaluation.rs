//! The result of evaluating a candidate design: objective values plus
//! constraint-violation amounts.

/// Outcome of evaluating one decision vector.
///
/// * `objectives` are **minimized**. Problems whose natural formulation
///   maximizes a quantity should negate it (and un-negate for reporting).
/// * `constraint_violations[k]` is the *amount* by which inequality
///   constraint `k` is violated: `0.0` (or any non-positive value, which is
///   clamped to zero) means satisfied, positive values measure infeasibility.
///   Deb's constrained-dominance uses the sum of violations, so amounts
///   should be scaled to comparable magnitudes by the problem definition.
///
/// # Examples
///
/// ```
/// use moea::Evaluation;
///
/// let feasible = Evaluation::new(vec![1.0, 2.0], vec![0.0, 0.0]);
/// assert!(feasible.is_feasible());
/// let infeasible = Evaluation::new(vec![1.0, 2.0], vec![0.5, 0.0]);
/// assert_eq!(infeasible.total_violation(), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    objectives: Vec<f64>,
    constraint_violations: Vec<f64>,
}

impl Evaluation {
    /// Creates an evaluation from raw objective values and violation amounts.
    ///
    /// Negative violation entries are clamped to `0.0`; NaN violations are
    /// treated as maximal (`f64::INFINITY`) so that numerically broken
    /// designs are never considered feasible. NaN objectives are likewise
    /// mapped to `f64::INFINITY`: NaN compares false against everything, so
    /// a NaN objective would otherwise make its carrier *non-dominated* and
    /// let a numerically broken design poison the Pareto front.
    pub fn new(mut objectives: Vec<f64>, mut constraint_violations: Vec<f64>) -> Self {
        for o in &mut objectives {
            if o.is_nan() {
                *o = f64::INFINITY;
            }
        }
        for v in &mut constraint_violations {
            if v.is_nan() {
                *v = f64::INFINITY;
            } else if *v < 0.0 {
                *v = 0.0;
            }
        }
        Evaluation {
            objectives,
            constraint_violations,
        }
    }

    /// Creates an evaluation of an unconstrained problem.
    pub fn unconstrained(objectives: Vec<f64>) -> Self {
        Evaluation {
            objectives,
            constraint_violations: Vec::new(),
        }
    }

    /// The minimized objective values.
    pub fn objectives(&self) -> &[f64] {
        &self.objectives
    }

    /// The clamped constraint-violation amounts (all `>= 0`).
    pub fn constraint_violations(&self) -> &[f64] {
        &self.constraint_violations
    }

    /// `true` when every constraint violation is exactly zero.
    pub fn is_feasible(&self) -> bool {
        self.constraint_violations.iter().all(|&v| v == 0.0)
    }

    /// Sum of all violation amounts; `0.0` for feasible designs.
    pub fn total_violation(&self) -> f64 {
        self.constraint_violations.iter().sum()
    }

    /// Decomposes into `(objectives, constraint_violations)`.
    pub fn into_parts(self) -> (Vec<f64>, Vec<f64>) {
        (self.objectives, self.constraint_violations)
    }
}

/// An [`Evaluation`] is *tainted* when any objective or violation is
/// non-finite ([`Evaluation::new`] already maps NaN to `+∞`, so taint
/// means infinite components). Its quarantine placeholder sets every
/// objective and violation to `+∞` — dominated by (or tied with) every
/// genuine candidate and never feasible, so it cannot poison a front.
/// `corrupt` fabricates the all-NaN result a numerically broken backend
/// would return (sanitized to `+∞` by construction), used only by
/// deterministic fault injection.
impl engine::Quarantine for Evaluation {
    fn is_tainted(&self) -> bool {
        self.objectives.iter().any(|o| !o.is_finite())
            || self.constraint_violations.iter().any(|v| !v.is_finite())
    }

    fn quarantine(&self) -> Self {
        Evaluation {
            objectives: vec![f64::INFINITY; self.objectives.len()],
            constraint_violations: vec![f64::INFINITY; self.constraint_violations.len()],
        }
    }

    fn corrupt(&self) -> Self {
        Evaluation::new(
            vec![f64::NAN; self.objectives.len()],
            vec![f64::NAN; self.constraint_violations.len()],
        )
    }
}

/// Builds violation amounts from natural specification comparisons.
///
/// Analog specifications come in two flavors: "at least" (e.g. DC gain ≥ 96
/// dB) and "at most" (e.g. settling time ≤ 0.24 µs). These helpers convert
/// them to normalized violation amounts: the relative shortfall w.r.t. the
/// bound, which keeps heterogeneous constraints (dB vs seconds vs unitless)
/// comparable inside constrained dominance.
#[derive(Debug, Clone, Default)]
pub struct ViolationBuilder {
    violations: Vec<f64>,
}

impl ViolationBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requires `value >= bound`. Records a relative shortfall when violated.
    pub fn at_least(&mut self, value: f64, bound: f64) -> &mut Self {
        self.violations
            .push(relative_shortfall_at_least(value, bound));
        self
    }

    /// Requires `value <= bound`. Records a relative excess when violated.
    pub fn at_most(&mut self, value: f64, bound: f64) -> &mut Self {
        self.violations.push(relative_excess_at_most(value, bound));
        self
    }

    /// Requires a boolean condition; violation `1.0` when false.
    pub fn require(&mut self, ok: bool) -> &mut Self {
        self.violations.push(if ok { 0.0 } else { 1.0 });
        self
    }

    /// Number of constraints recorded so far.
    pub fn len(&self) -> usize {
        self.violations.len()
    }

    /// `true` when no constraints have been recorded.
    pub fn is_empty(&self) -> bool {
        self.violations.is_empty()
    }

    /// Finishes the builder, returning the violation vector.
    pub fn finish(self) -> Vec<f64> {
        self.violations
    }
}

/// Relative violation of `value >= bound` (0 when satisfied).
///
/// The shortfall is normalized by `max(|bound|, 1e-30)` so that constraints
/// on quantities of very different magnitude contribute comparably.
pub fn relative_shortfall_at_least(value: f64, bound: f64) -> f64 {
    if value.is_nan() {
        return f64::INFINITY;
    }
    if value >= bound {
        0.0
    } else {
        (bound - value) / bound.abs().max(1e-30)
    }
}

/// Relative violation of `value <= bound` (0 when satisfied).
pub fn relative_excess_at_most(value: f64, bound: f64) -> f64 {
    if value.is_nan() {
        return f64::INFINITY;
    }
    if value <= bound {
        0.0
    } else {
        (value - bound) / bound.abs().max(1e-30)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negative_violations_are_clamped() {
        let ev = Evaluation::new(vec![1.0], vec![-0.5, 0.25]);
        assert_eq!(ev.constraint_violations(), &[0.0, 0.25]);
        assert!(!ev.is_feasible());
        assert_eq!(ev.total_violation(), 0.25);
    }

    #[test]
    fn nan_violation_is_infeasible() {
        let ev = Evaluation::new(vec![1.0], vec![f64::NAN]);
        assert!(!ev.is_feasible());
        assert!(ev.total_violation().is_infinite());
    }

    #[test]
    fn nan_objectives_are_sanitized_to_infinity() {
        let ev = Evaluation::new(vec![f64::NAN, 2.0], vec![]);
        assert_eq!(ev.objectives()[0], f64::INFINITY);
        assert_eq!(ev.objectives()[1], 2.0);
        // An all-NaN evaluation must be dominatable, not incomparable:
        use crate::dominance::{dominates, Dominance};
        let broken = Evaluation::new(vec![f64::NAN, f64::NAN], vec![]);
        let fine = Evaluation::new(vec![1.0, 1.0], vec![]);
        assert_eq!(
            dominates(fine.objectives(), broken.objectives()),
            Dominance::First
        );
    }

    #[test]
    fn unconstrained_is_feasible() {
        assert!(Evaluation::unconstrained(vec![1.0, 2.0]).is_feasible());
    }

    #[test]
    fn builder_accumulates_constraints_in_order() {
        let mut b = ViolationBuilder::new();
        b.at_least(96.0, 96.0).at_most(0.3, 0.24).require(true);
        let v = b.finish();
        assert_eq!(v.len(), 3);
        assert_eq!(v[0], 0.0);
        assert!((v[1] - 0.06 / 0.24).abs() < 1e-12);
        assert_eq!(v[2], 0.0);
    }

    #[test]
    fn shortfall_is_relative() {
        assert!((relative_shortfall_at_least(90.0, 100.0) - 0.1).abs() < 1e-12);
        assert_eq!(relative_shortfall_at_least(100.0, 100.0), 0.0);
        assert_eq!(relative_shortfall_at_least(101.0, 100.0), 0.0);
    }

    #[test]
    fn excess_is_relative() {
        assert!((relative_excess_at_most(110.0, 100.0) - 0.1).abs() < 1e-12);
        assert_eq!(relative_excess_at_most(99.0, 100.0), 0.0);
    }

    #[test]
    fn nan_values_in_helpers_are_infinite() {
        assert!(relative_shortfall_at_least(f64::NAN, 1.0).is_infinite());
        assert!(relative_excess_at_most(f64::NAN, 1.0).is_infinite());
    }

    #[test]
    fn quarantine_detects_and_replaces_nonfinite() {
        use engine::Quarantine;
        let clean = Evaluation::new(vec![1.0, 2.0], vec![0.0]);
        assert!(!clean.is_tainted());
        let broken = Evaluation::new(vec![1.0, f64::NAN], vec![0.0]);
        assert!(broken.is_tainted());
        let infinite_violation = Evaluation::new(vec![1.0], vec![f64::INFINITY]);
        assert!(infinite_violation.is_tainted());
        let q = broken.quarantine();
        assert_eq!(q.objectives(), &[f64::INFINITY, f64::INFINITY]);
        assert_eq!(q.constraint_violations(), &[f64::INFINITY]);
        assert!(!q.is_feasible());
        let c = clean.corrupt();
        assert!(c.is_tainted());
        assert_eq!(c.objectives().len(), 2);
        assert_eq!(c.constraint_violations().len(), 1);
    }

    #[test]
    fn into_parts_round_trips() {
        let ev = Evaluation::new(vec![1.0, 2.0], vec![0.1]);
        let (obj, cons) = ev.into_parts();
        assert_eq!(obj, vec![1.0, 2.0]);
        assert_eq!(cons, vec![0.1]);
    }
}
