//! Scalarization baselines: the weighted-sum approach the paper's
//! introduction contrasts with population-based multi-objective search.
//!
//! *"One method of solving a multi-objective circuit optimization problem
//! is to transform it into a set of scalarized single objective
//! optimization problems by the weighted sum approach or the
//! Normal-Boundary Intersection method \[4\]."*
//!
//! This module provides a single-objective GA
//! ([`SingleObjectiveGa`]) plus [`weighted_sum_front`], which sweeps a
//! set of weight vectors and assembles the non-dominated union of the
//! per-weight optima. Its known weaknesses — missing concave front
//! regions, uneven coverage — are demonstrated by the module tests on
//! ZDT2, motivating the population-based approaches of the rest of the
//! workspace.

use crate::dominance::non_dominated_indices;
use crate::individual::Individual;
use crate::operators::{random_vector, Variation};
use crate::problem::Problem;
use crate::OptimizeError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Penalty factor applied to constraint violations in the scalar fitness.
const PENALTY: f64 = 1e3;

/// A minimal elitist single-objective GA over a scalar fitness
/// (weighted objective sum + violation penalty).
#[derive(Debug, Clone)]
pub struct SingleObjectiveGa {
    population_size: usize,
    generations: usize,
}

impl SingleObjectiveGa {
    /// Creates a GA with the given population and generation budget.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError::InvalidConfig`] when the population is
    /// below 4 or the budget is zero.
    pub fn new(population_size: usize, generations: usize) -> Result<Self, OptimizeError> {
        if population_size < 4 {
            return Err(OptimizeError::invalid_config(
                "population_size",
                "must be at least 4",
            ));
        }
        if generations == 0 {
            return Err(OptimizeError::invalid_config(
                "generations",
                "must be at least 1",
            ));
        }
        Ok(SingleObjectiveGa {
            population_size,
            generations,
        })
    }

    /// Minimizes `Σ wᵢ·fᵢ(x) + penalty·violations` over the problem's
    /// decision space, returning the best individual found (with its true
    /// multi-objective evaluation) and the evaluation count.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` differs from the problem's objective
    /// count.
    pub fn minimize<P: Problem>(
        &self,
        problem: &P,
        weights: &[f64],
        seed: u64,
    ) -> (Individual, usize) {
        assert_eq!(
            weights.len(),
            problem.num_objectives(),
            "one weight per objective"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let bounds = problem.bounds().clone();
        let variation = Variation::standard(bounds.len());
        let fitness = |ind: &Individual| -> f64 {
            let objective: f64 = ind
                .objectives()
                .iter()
                .zip(weights)
                .map(|(&f, &w)| w * f)
                .sum();
            objective + PENALTY * ind.total_violation()
        };

        let mut evaluations = 0usize;
        let mut pop: Vec<Individual> = (0..self.population_size)
            .map(|_| {
                let genes = random_vector(&mut rng, &bounds);
                let ev = problem.evaluate(&genes);
                evaluations += 1;
                Individual::new(genes, ev)
            })
            .collect();

        for _ in 0..self.generations {
            let mut offspring = Vec::with_capacity(self.population_size);
            while offspring.len() < self.population_size {
                // Binary tournament on scalar fitness.
                let pick = |rng: &mut StdRng| -> usize {
                    let a = rng.gen_range(0..pop.len());
                    let b = rng.gen_range(0..pop.len());
                    if fitness(&pop[a]) <= fitness(&pop[b]) {
                        a
                    } else {
                        b
                    }
                };
                let pa = pick(&mut rng);
                let pb = pick(&mut rng);
                let (c1, c2) =
                    variation.offspring(&mut rng, &pop[pa].genes, &pop[pb].genes, &bounds);
                for genes in [c1, c2] {
                    if offspring.len() >= self.population_size {
                        break;
                    }
                    let ev = problem.evaluate(&genes);
                    evaluations += 1;
                    offspring.push(Individual::new(genes, ev));
                }
            }
            // µ+λ truncation on fitness.
            pop.extend(offspring);
            pop.sort_by(|a, b| fitness(a).total_cmp(&fitness(b)));
            pop.truncate(self.population_size);
        }

        (
            pop.into_iter().next().expect("non-empty population"),
            evaluations,
        )
    }
}

/// Sweeps `count` evenly-spaced weight vectors `(w, 1−w)` over a
/// biobjective problem, one GA run per weight, and returns the
/// non-dominated, feasible union of the optima plus the total evaluation
/// count.
///
/// Objectives must be scaled comparably for the sweep to spread; pass
/// `scales` to normalize (`fᵢ/scaleᵢ` enters the weighted sum).
///
/// # Errors
///
/// Returns [`OptimizeError::InvalidConfig`] when `count == 0` or the
/// problem is not biobjective.
pub fn weighted_sum_front<P: Problem>(
    problem: &P,
    count: usize,
    ga: &SingleObjectiveGa,
    scales: [f64; 2],
    seed: u64,
) -> Result<(Vec<Individual>, usize), OptimizeError> {
    if count == 0 {
        return Err(OptimizeError::invalid_config(
            "count",
            "need at least one weight vector",
        ));
    }
    if problem.num_objectives() != 2 {
        return Err(OptimizeError::invalid_config(
            "problem",
            "weighted_sum_front supports biobjective problems",
        ));
    }
    let mut optima = Vec::with_capacity(count);
    let mut evaluations = 0usize;
    for k in 0..count {
        let w = if count == 1 {
            0.5
        } else {
            k as f64 / (count - 1) as f64
        };
        let weights = [w / scales[0], (1.0 - w) / scales[1]];
        let (best, evals) = ga.minimize(problem, &weights, seed.wrapping_add(k as u64));
        evaluations += evals;
        if best.is_feasible() {
            optima.push(best);
        }
    }
    let objs: Vec<Vec<f64>> = optima.iter().map(|m| m.objectives().to_vec()).collect();
    let keep = non_dominated_indices(&objs);
    let front = keep.into_iter().map(|i| optima[i].clone()).collect();
    Ok((front, evaluations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{Schaffer, Zdt1, Zdt2};

    #[test]
    fn constructor_validates() {
        assert!(SingleObjectiveGa::new(3, 10).is_err());
        assert!(SingleObjectiveGa::new(10, 0).is_err());
        assert!(SingleObjectiveGa::new(10, 10).is_ok());
    }

    #[test]
    fn single_weight_finds_an_extreme() {
        // All weight on f1 of SCH drives x toward 0 (f1 = x² minimal).
        let ga = SingleObjectiveGa::new(40, 60).unwrap();
        let (best, _) = ga.minimize(&Schaffer::new(), &[1.0, 0.0], 1);
        assert!(best.objective(0) < 0.05, "f1 = {}", best.objective(0));
    }

    #[test]
    fn sweep_covers_a_convex_front() {
        let ga = SingleObjectiveGa::new(40, 60).unwrap();
        let (front, evals) = weighted_sum_front(&Zdt1::new(6), 11, &ga, [1.0, 1.0], 3).unwrap();
        assert!(evals > 0);
        assert!(front.len() >= 5, "sweep found only {} optima", front.len());
        let ext = crate::metrics::extent(
            &front
                .iter()
                .map(|m| m.objectives().to_vec())
                .collect::<Vec<_>>(),
            0,
        );
        assert!(ext > 0.5, "convex front should be covered: extent {ext}");
    }

    #[test]
    fn sweep_misses_concave_interior() {
        // The textbook failure: on ZDT2 (concave front) the weighted sum
        // only finds the extremes, never the interior.
        let ga = SingleObjectiveGa::new(40, 80).unwrap();
        let (front, _) = weighted_sum_front(&Zdt2::new(6), 11, &ga, [1.0, 1.0], 5).unwrap();
        let interior = front
            .iter()
            .filter(|m| m.objective(0) > 0.15 && m.objective(0) < 0.85)
            .count();
        assert!(
            interior <= 2,
            "weighted sum should miss the concave interior, found {interior}"
        );
    }

    #[test]
    fn sweep_rejects_bad_inputs() {
        let ga = SingleObjectiveGa::new(10, 5).unwrap();
        assert!(weighted_sum_front(&Zdt1::new(4), 0, &ga, [1.0, 1.0], 1).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let ga = SingleObjectiveGa::new(20, 20).unwrap();
        let (a, _) = ga.minimize(&Schaffer::new(), &[0.5, 0.5], 9);
        let (b, _) = ga.minimize(&Schaffer::new(), &[0.5, 0.5], 9);
        assert_eq!(a.objectives(), b.objectives());
    }
}
