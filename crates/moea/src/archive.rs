//! A bounded archive of non-dominated, feasible solutions.

use crate::dominance::{dominates, Dominance};
use crate::individual::Individual;
use crate::sorting::assign_crowding;

/// A Pareto archive keeps the best feasible non-dominated individuals seen
/// so far, truncating by crowding distance when a capacity is set.
///
/// Infeasible candidates are rejected outright: the archive's purpose is to
/// record the usable design surface.
///
/// # Examples
///
/// ```
/// use moea::{Individual, Evaluation, ParetoArchive};
///
/// let mut archive = ParetoArchive::unbounded();
/// archive.offer(Individual::new(vec![0.0], Evaluation::unconstrained(vec![1.0, 2.0])));
/// archive.offer(Individual::new(vec![0.0], Evaluation::unconstrained(vec![2.0, 1.0])));
/// archive.offer(Individual::new(vec![0.0], Evaluation::unconstrained(vec![3.0, 3.0])));
/// assert_eq!(archive.len(), 2); // (3,3) is dominated
/// ```
#[derive(Debug, Clone, Default)]
pub struct ParetoArchive {
    members: Vec<Individual>,
    capacity: Option<usize>,
}

impl ParetoArchive {
    /// Creates an archive without a size bound.
    pub fn unbounded() -> Self {
        ParetoArchive::default()
    }

    /// Creates an archive truncated to `capacity` members by crowding.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "archive capacity must be positive");
        ParetoArchive {
            members: Vec::new(),
            capacity: Some(capacity),
        }
    }

    /// Number of archived individuals.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when nothing has been archived.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The archived front.
    pub fn as_slice(&self) -> &[Individual] {
        &self.members
    }

    /// Consumes the archive, returning its members.
    pub fn into_members(self) -> Vec<Individual> {
        self.members
    }

    /// Offers a candidate. Returns `true` when it was accepted (i.e. it was
    /// feasible and not dominated by an archived member).
    ///
    /// Accepting a candidate evicts every archived member it dominates.
    /// Duplicates (identical objectives) are rejected to keep the archive a
    /// set.
    pub fn offer(&mut self, candidate: Individual) -> bool {
        if !candidate.is_feasible() {
            return false;
        }
        let c_obj = candidate.objectives();
        for m in &self.members {
            match dominates(m.objectives(), c_obj) {
                Dominance::First => return false,
                _ => {
                    if m.objectives() == c_obj {
                        return false;
                    }
                }
            }
        }
        self.members
            .retain(|m| dominates(c_obj, m.objectives()) != Dominance::First);
        self.members.push(candidate);
        if let Some(cap) = self.capacity {
            if self.members.len() > cap {
                self.truncate_by_crowding(cap);
            }
        }
        true
    }

    /// Offers every member of an iterator; returns how many were accepted.
    pub fn offer_all<I: IntoIterator<Item = Individual>>(&mut self, candidates: I) -> usize {
        candidates
            .into_iter()
            .filter(|c| self.offer(c.clone()))
            .count()
    }

    /// Objective vectors of the archived front.
    pub fn objective_rows(&self) -> Vec<Vec<f64>> {
        self.members
            .iter()
            .map(|m| m.objectives().to_vec())
            .collect()
    }

    fn truncate_by_crowding(&mut self, cap: usize) {
        let idx: Vec<usize> = (0..self.members.len()).collect();
        assign_crowding(&mut self.members, &idx);
        // Drop the most crowded (smallest distance) members one at a time.
        while self.members.len() > cap {
            let worst = self
                .members
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.crowding
                        .partial_cmp(&b.crowding)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(i, _)| i)
                .expect("non-empty archive");
            self.members.remove(worst);
            let idx: Vec<usize> = (0..self.members.len()).collect();
            assign_crowding(&mut self.members, &idx);
        }
    }
}

impl Extend<Individual> for ParetoArchive {
    fn extend<I: IntoIterator<Item = Individual>>(&mut self, iter: I) {
        for ind in iter {
            let _ = self.offer(ind);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluation::Evaluation;

    fn ind(objs: Vec<f64>) -> Individual {
        Individual::new(vec![0.0], Evaluation::unconstrained(objs))
    }

    fn infeasible(objs: Vec<f64>) -> Individual {
        Individual::new(vec![0.0], Evaluation::new(objs, vec![1.0]))
    }

    #[test]
    fn rejects_infeasible() {
        let mut a = ParetoArchive::unbounded();
        assert!(!a.offer(infeasible(vec![0.0, 0.0])));
        assert!(a.is_empty());
    }

    #[test]
    fn rejects_dominated_and_evicts() {
        let mut a = ParetoArchive::unbounded();
        assert!(a.offer(ind(vec![2.0, 2.0])));
        assert!(!a.offer(ind(vec![3.0, 3.0])));
        assert!(a.offer(ind(vec![1.0, 1.0]))); // evicts (2,2)
        assert_eq!(a.len(), 1);
        assert_eq!(a.as_slice()[0].objectives(), &[1.0, 1.0]);
    }

    #[test]
    fn rejects_duplicates() {
        let mut a = ParetoArchive::unbounded();
        assert!(a.offer(ind(vec![1.0, 2.0])));
        assert!(!a.offer(ind(vec![1.0, 2.0])));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn keeps_incomparable_members() {
        let mut a = ParetoArchive::unbounded();
        a.offer(ind(vec![1.0, 3.0]));
        a.offer(ind(vec![3.0, 1.0]));
        a.offer(ind(vec![2.0, 2.0]));
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn bounded_archive_truncates_crowded_interior() {
        let mut a = ParetoArchive::bounded(3);
        // Line front with one tight pair; the pair member should be evicted.
        a.offer(ind(vec![0.0, 1.0]));
        a.offer(ind(vec![0.5, 0.5]));
        a.offer(ind(vec![0.52, 0.48]));
        a.offer(ind(vec![1.0, 0.0]));
        assert_eq!(a.len(), 3);
        // extremes must survive
        let objs = a.objective_rows();
        assert!(objs.contains(&vec![0.0, 1.0]));
        assert!(objs.contains(&vec![1.0, 0.0]));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn bounded_zero_rejected() {
        let _ = ParetoArchive::bounded(0);
    }

    #[test]
    fn offer_all_counts_acceptances() {
        let mut a = ParetoArchive::unbounded();
        let n = a.offer_all(vec![
            ind(vec![1.0, 1.0]),
            ind(vec![2.0, 2.0]),
            ind(vec![0.5, 2.0]),
        ]);
        assert_eq!(n, 2);
    }
}
