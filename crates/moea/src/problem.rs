//! The optimization-problem abstraction: box-bounded real decision
//! variables, minimized objectives, inequality constraints.

use crate::error::OptimizeError;
use crate::evaluation::Evaluation;
use engine::CacheCanonicalizer;

/// Box bounds of the decision space.
///
/// Each decision variable `x[i]` must satisfy `lower[i] <= x[i] <= upper[i]`.
///
/// # Examples
///
/// ```
/// use moea::Bounds;
///
/// # fn main() -> Result<(), moea::OptimizeError> {
/// let b = Bounds::new(vec![0.0, -1.0], vec![1.0, 1.0])?;
/// assert_eq!(b.len(), 2);
/// assert!(b.contains(&[0.5, 0.0]));
/// assert!(!b.contains(&[1.5, 0.0]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Bounds {
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl Bounds {
    /// Creates bounds from lower/upper vectors.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError::InvalidProblem`] when the vectors differ in
    /// length, are empty, contain non-finite values, or `lower[i] > upper[i]`
    /// for some `i`.
    pub fn new(lower: Vec<f64>, upper: Vec<f64>) -> Result<Self, OptimizeError> {
        if lower.len() != upper.len() {
            return Err(OptimizeError::invalid_problem(format!(
                "bounds length mismatch: {} lower vs {} upper",
                lower.len(),
                upper.len()
            )));
        }
        if lower.is_empty() {
            return Err(OptimizeError::invalid_problem(
                "bounds must cover at least one variable",
            ));
        }
        for (i, (&lo, &hi)) in lower.iter().zip(&upper).enumerate() {
            if !lo.is_finite() || !hi.is_finite() {
                return Err(OptimizeError::invalid_problem(format!(
                    "bounds for variable {i} are not finite: [{lo}, {hi}]"
                )));
            }
            if lo > hi {
                return Err(OptimizeError::invalid_problem(format!(
                    "lower bound {lo} exceeds upper bound {hi} for variable {i}"
                )));
            }
        }
        Ok(Bounds { lower, upper })
    }

    /// Creates identical `[lo, hi]` bounds for `n` variables.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Bounds::new`].
    pub fn uniform(n: usize, lo: f64, hi: f64) -> Result<Self, OptimizeError> {
        Bounds::new(vec![lo; n], vec![hi; n])
    }

    /// Number of decision variables covered.
    pub fn len(&self) -> usize {
        self.lower.len()
    }

    /// `true` when no variables are covered (never constructible via `new`).
    pub fn is_empty(&self) -> bool {
        self.lower.is_empty()
    }

    /// Lower bound vector.
    pub fn lower(&self) -> &[f64] {
        &self.lower
    }

    /// Upper bound vector.
    pub fn upper(&self) -> &[f64] {
        &self.upper
    }

    /// Width `upper[i] - lower[i]` of variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn width(&self, i: usize) -> f64 {
        self.upper[i] - self.lower[i]
    }

    /// `true` when `x` has the right dimension and lies inside the box.
    pub fn contains(&self, x: &[f64]) -> bool {
        x.len() == self.len()
            && x.iter()
                .zip(self.lower.iter().zip(&self.upper))
                .all(|(&v, (&lo, &hi))| v >= lo && v <= hi)
    }

    /// Clamps `x` into the box in place (non-finite entries snap to the
    /// lower bound).
    pub fn clamp(&self, x: &mut [f64]) {
        for (v, (&lo, &hi)) in x.iter_mut().zip(self.lower.iter().zip(&self.upper)) {
            if !v.is_finite() {
                *v = lo;
            } else {
                *v = v.clamp(lo, hi);
            }
        }
    }

    /// Maps a vector of unit-interval coordinates into the box.
    ///
    /// # Panics
    ///
    /// Panics if `unit.len()` differs from [`Bounds::len`].
    pub fn denormalize(&self, unit: &[f64]) -> Vec<f64> {
        assert_eq!(unit.len(), self.len(), "dimension mismatch");
        unit.iter()
            .zip(self.lower.iter().zip(&self.upper))
            .map(|(&u, (&lo, &hi))| lo + u * (hi - lo))
            .collect()
    }
}

/// A multi-objective, box-bounded, inequality-constrained minimization
/// problem.
///
/// Implementors define the decision space via [`bounds`](Problem::bounds),
/// the number of minimized objectives, and the evaluation function. All
/// algorithms in this workspace interact with problems exclusively through
/// this trait, so the switched-capacitor integrator of `analog-circuits`
/// and the ZDT suite plug into the same machinery.
///
/// The trait is object-safe; optimizers typically take `P: Problem` by value
/// and share it internally.
pub trait Problem {
    /// Short human-readable problem name (used in reports and benches).
    fn name(&self) -> &str;

    /// Decision-space box bounds; also defines the variable count.
    fn bounds(&self) -> &Bounds;

    /// Number of minimized objectives (at least 1, usually 2 here).
    fn num_objectives(&self) -> usize;

    /// Number of inequality constraints (0 for unconstrained problems).
    fn num_constraints(&self) -> usize {
        0
    }

    /// Evaluates a decision vector.
    ///
    /// Implementations must return exactly
    /// [`num_objectives`](Problem::num_objectives) objective values and
    /// [`num_constraints`](Problem::num_constraints) violation amounts.
    /// `x` is guaranteed to lie inside [`bounds`](Problem::bounds) when
    /// called by the optimizers of this workspace.
    fn evaluate(&self, x: &[f64]) -> Evaluation;

    /// Evaluates a whole batch of decision vectors, returning one
    /// [`Evaluation`] per input in order.
    ///
    /// The default maps [`evaluate`](Problem::evaluate) over the batch;
    /// problems with a struct-of-arrays fast path override this with a
    /// batch kernel. Overrides **must** be bit-identical to the default
    /// (`evaluate_all(&b)[i] == evaluate(&b[i])`, objective for
    /// objective, bit for bit) — the execution engine treats the two as
    /// interchangeable and pinned artifacts depend on it.
    fn evaluate_all(&self, batch: &[Vec<f64>]) -> Vec<Evaluation> {
        batch.iter().map(|x| self.evaluate(x)).collect()
    }

    /// An optional canonicalizer for memoization keys.
    ///
    /// Problems that decode genes through a coarse discretization (e.g.
    /// snapping widths to layout unit fingers) evaluate many distinct
    /// raw gene vectors to bit-identical results; returning a function
    /// that maps genes to a canonical representative lets the execution
    /// engine's cache serve all of them from one entry. Two gene vectors
    /// may share a canonical form only when
    /// [`evaluate`](Problem::evaluate) provably returns bit-identical
    /// results for both. The default (`None`) keys the cache on the raw
    /// genes.
    fn cache_canonicalizer(&self) -> Option<CacheCanonicalizer> {
        None
    }

    /// Number of decision variables; provided from the bounds.
    fn num_variables(&self) -> usize {
        self.bounds().len()
    }

    /// Validates an evaluation against the declared dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError::EvaluationMismatch`] when sizes disagree.
    fn check_evaluation(&self, ev: &Evaluation) -> Result<(), OptimizeError> {
        if ev.objectives().len() != self.num_objectives() {
            return Err(OptimizeError::EvaluationMismatch {
                expected: self.num_objectives(),
                actual: ev.objectives().len(),
                what: "objectives",
            });
        }
        if ev.constraint_violations().len() != self.num_constraints() {
            return Err(OptimizeError::EvaluationMismatch {
                expected: self.num_constraints(),
                actual: ev.constraint_violations().len(),
                what: "constraints",
            });
        }
        Ok(())
    }
}

// Allow boxed (possibly type-erased) problems everywhere a `Problem` is
// expected, so a registry can hand out `Box<dyn Problem + Send + Sync>`
// and still instantiate any optimizer with it.
impl<P: Problem + ?Sized> Problem for Box<P> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn bounds(&self) -> &Bounds {
        (**self).bounds()
    }
    fn num_objectives(&self) -> usize {
        (**self).num_objectives()
    }
    fn num_constraints(&self) -> usize {
        (**self).num_constraints()
    }
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        (**self).evaluate(x)
    }
    fn evaluate_all(&self, batch: &[Vec<f64>]) -> Vec<Evaluation> {
        (**self).evaluate_all(batch)
    }
    fn cache_canonicalizer(&self) -> Option<CacheCanonicalizer> {
        (**self).cache_canonicalizer()
    }
}

// Allow passing shared references to problems everywhere a `Problem` is
// expected, so an optimizer can borrow a problem owned by a harness.
impl<P: Problem + ?Sized> Problem for &P {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn bounds(&self) -> &Bounds {
        (**self).bounds()
    }
    fn num_objectives(&self) -> usize {
        (**self).num_objectives()
    }
    fn num_constraints(&self) -> usize {
        (**self).num_constraints()
    }
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        (**self).evaluate(x)
    }
    fn evaluate_all(&self, batch: &[Vec<f64>]) -> Vec<Evaluation> {
        (**self).evaluate_all(batch)
    }
    fn cache_canonicalizer(&self) -> Option<CacheCanonicalizer> {
        (**self).cache_canonicalizer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_reject_mismatched_lengths() {
        assert!(Bounds::new(vec![0.0], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn bounds_reject_empty() {
        assert!(Bounds::new(vec![], vec![]).is_err());
    }

    #[test]
    fn bounds_reject_inverted() {
        assert!(Bounds::new(vec![2.0], vec![1.0]).is_err());
    }

    #[test]
    fn bounds_reject_non_finite() {
        assert!(Bounds::new(vec![f64::NEG_INFINITY], vec![1.0]).is_err());
        assert!(Bounds::new(vec![0.0], vec![f64::NAN]).is_err());
    }

    #[test]
    fn clamp_snaps_nan_to_lower() {
        let b = Bounds::uniform(2, -1.0, 1.0).unwrap();
        let mut x = [f64::NAN, 5.0];
        b.clamp(&mut x);
        assert_eq!(x, [-1.0, 1.0]);
    }

    #[test]
    fn denormalize_maps_unit_cube() {
        let b = Bounds::new(vec![0.0, 10.0], vec![2.0, 20.0]).unwrap();
        assert_eq!(b.denormalize(&[0.5, 0.0]), vec![1.0, 10.0]);
        assert_eq!(b.denormalize(&[1.0, 1.0]), vec![2.0, 20.0]);
    }

    #[test]
    fn contains_checks_dimension() {
        let b = Bounds::uniform(3, 0.0, 1.0).unwrap();
        assert!(!b.contains(&[0.5, 0.5]));
        assert!(b.contains(&[0.0, 0.5, 1.0]));
    }

    struct Toy {
        bounds: Bounds,
    }
    impl Problem for Toy {
        fn name(&self) -> &str {
            "toy"
        }
        fn bounds(&self) -> &Bounds {
            &self.bounds
        }
        fn num_objectives(&self) -> usize {
            2
        }
        fn evaluate(&self, x: &[f64]) -> Evaluation {
            Evaluation::unconstrained(vec![x[0], 1.0 - x[0]])
        }
    }

    #[test]
    fn check_evaluation_detects_mismatch() {
        let toy = Toy {
            bounds: Bounds::uniform(1, 0.0, 1.0).unwrap(),
        };
        let good = toy.evaluate(&[0.3]);
        assert!(toy.check_evaluation(&good).is_ok());
        let bad = Evaluation::unconstrained(vec![1.0]);
        assert!(toy.check_evaluation(&bad).is_err());
        let bad_cons = Evaluation::new(vec![1.0, 2.0], vec![0.0]);
        assert!(toy.check_evaluation(&bad_cons).is_err());
    }

    #[test]
    fn default_evaluate_all_maps_evaluate() {
        let toy = Toy {
            bounds: Bounds::uniform(1, 0.0, 1.0).unwrap(),
        };
        let batch = vec![vec![0.1], vec![0.9]];
        let all = toy.evaluate_all(&batch);
        assert_eq!(all.len(), 2);
        for (x, ev) in batch.iter().zip(&all) {
            assert_eq!(ev, &toy.evaluate(x));
        }
        // Forwarding impls delegate both batch evaluation and the
        // canonicalizer.
        let boxed: Box<dyn Problem> = Box::new(Toy {
            bounds: Bounds::uniform(1, 0.0, 1.0).unwrap(),
        });
        assert_eq!(boxed.evaluate_all(&batch), all);
        assert!(boxed.cache_canonicalizer().is_none());
        let by_ref: &Toy = &toy;
        assert_eq!(Problem::evaluate_all(&by_ref, &batch), all);
        assert!(Problem::cache_canonicalizer(&by_ref).is_none());
    }

    #[test]
    fn problem_implemented_for_references() {
        let toy = Toy {
            bounds: Bounds::uniform(1, 0.0, 1.0).unwrap(),
        };
        fn takes_problem<P: Problem>(p: P) -> usize {
            p.num_variables()
        }
        assert_eq!(takes_problem(&toy), 1);
    }
}
