//! Parent-selection schemes: crowded binary tournament (NSGA-II) and
//! rank-based roulette (used by the paper's global mating pool).

use crate::dominance::crowded_compare;
use crate::individual::Individual;
use rand::Rng;
use std::cmp::Ordering;

/// Crowded binary tournament: draws two random members and returns the index
/// of the preferred one under the crowded-comparison operator.
///
/// Requires ranks/crowding to have been assigned (see
/// [`rank_and_crowd`](crate::sorting::rank_and_crowd)).
///
/// # Panics
///
/// Panics if `pop` is empty.
pub fn binary_tournament<R: Rng + ?Sized>(rng: &mut R, pop: &[Individual]) -> usize {
    assert!(!pop.is_empty(), "tournament on empty population");
    let a = rng.gen_range(0..pop.len());
    let b = rng.gen_range(0..pop.len());
    match crowded_compare(&pop[a], &pop[b]) {
        Ordering::Less => a,
        Ordering::Greater => b,
        Ordering::Equal => {
            if rng.gen::<bool>() {
                a
            } else {
                b
            }
        }
    }
}

/// Rank-based roulette selection.
///
/// Each individual's selection weight decays geometrically with its rank:
/// `w = decay^rank` (rank 0 is the best). This is the "rank-based selection
/// of individuals from the entire population" the paper uses to build the
/// Global Mating Pool: it gives every partition's members a chance while
/// still biasing toward locally/globally superior solutions.
///
/// Individuals whose rank is `usize::MAX` (unranked) get the smallest
/// weight present.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankRoulette {
    /// Geometric decay per rank, in `(0, 1]`. Smaller = greedier.
    pub decay: f64,
}

impl RankRoulette {
    /// Creates a rank-roulette with the given decay.
    ///
    /// # Panics
    ///
    /// Panics if `decay` is not in `(0, 1]`.
    pub fn new(decay: f64) -> Self {
        assert!(
            decay > 0.0 && decay <= 1.0,
            "rank roulette decay must lie in (0, 1]"
        );
        RankRoulette { decay }
    }

    /// Selects one index from `pop` with rank-weighted probability.
    ///
    /// # Panics
    ///
    /// Panics if `pop` is empty.
    pub fn select<R: Rng + ?Sized>(&self, rng: &mut R, pop: &[Individual]) -> usize {
        assert!(!pop.is_empty(), "roulette on empty population");
        let max_rank = pop
            .iter()
            .map(|p| if p.rank == usize::MAX { 0 } else { p.rank })
            .max()
            .unwrap_or(0);
        let weight = |ind: &Individual| -> f64 {
            let r = if ind.rank == usize::MAX {
                max_rank + 1
            } else {
                ind.rank
            };
            self.decay.powi(r as i32)
        };
        let total: f64 = pop.iter().map(weight).sum();
        if total <= 0.0 || !total.is_finite() {
            return rng.gen_range(0..pop.len());
        }
        let mut target = rng.gen::<f64>() * total;
        for (i, ind) in pop.iter().enumerate() {
            target -= weight(ind);
            if target <= 0.0 {
                return i;
            }
        }
        pop.len() - 1
    }

    /// Fills a mating pool of `n` selected indices.
    pub fn pool<R: Rng + ?Sized>(&self, rng: &mut R, pop: &[Individual], n: usize) -> Vec<usize> {
        (0..n).map(|_| self.select(rng, pop)).collect()
    }
}

impl Default for RankRoulette {
    /// Decay 0.8: rank-1 individuals are selected 80 % as often as rank-0.
    fn default() -> Self {
        RankRoulette::new(0.8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluation::Evaluation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ranked(rank: usize, crowding: f64) -> Individual {
        let mut i = Individual::new(vec![0.0], Evaluation::unconstrained(vec![0.0, 0.0]));
        i.rank = rank;
        i.crowding = crowding;
        i
    }

    #[test]
    fn tournament_prefers_lower_rank() {
        let mut rng = StdRng::seed_from_u64(1);
        let pop = vec![ranked(0, 1.0), ranked(5, 1.0)];
        let mut zero_wins = 0;
        for _ in 0..200 {
            if binary_tournament(&mut rng, &pop) == 0 {
                zero_wins += 1;
            }
        }
        // index 0 wins every tournament it appears in; expected ~75 % overall
        assert!(zero_wins > 120, "rank-0 won only {zero_wins}/200");
    }

    #[test]
    #[should_panic(expected = "empty population")]
    fn tournament_panics_on_empty() {
        let mut rng = StdRng::seed_from_u64(1);
        let pop: Vec<Individual> = Vec::new();
        let _ = binary_tournament(&mut rng, &pop);
    }

    #[test]
    #[should_panic(expected = "decay must lie")]
    fn roulette_rejects_bad_decay() {
        let _ = RankRoulette::new(0.0);
    }

    #[test]
    fn roulette_biases_toward_rank_zero() {
        let mut rng = StdRng::seed_from_u64(2);
        let pop = vec![ranked(0, 0.0), ranked(1, 0.0), ranked(2, 0.0)];
        let roulette = RankRoulette::new(0.5);
        let mut counts = [0usize; 3];
        for _ in 0..6000 {
            counts[roulette.select(&mut rng, &pop)] += 1;
        }
        // weights 1 : 0.5 : 0.25 -> expected ~3428 : 1714 : 857
        assert!(counts[0] > counts[1] && counts[1] > counts[2], "{counts:?}");
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((ratio - 2.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    fn roulette_with_decay_one_is_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let pop = vec![ranked(0, 0.0), ranked(9, 0.0)];
        let roulette = RankRoulette::new(1.0);
        let mut zero = 0;
        for _ in 0..2000 {
            if roulette.select(&mut rng, &pop) == 0 {
                zero += 1;
            }
        }
        assert!((zero as f64 - 1000.0).abs() < 120.0, "zero={zero}");
    }

    #[test]
    fn roulette_handles_unranked_members() {
        let mut rng = StdRng::seed_from_u64(4);
        let pop = vec![ranked(usize::MAX, 0.0), ranked(0, 0.0)];
        let roulette = RankRoulette::default();
        // must not panic / overflow
        for _ in 0..100 {
            let i = roulette.select(&mut rng, &pop);
            assert!(i < 2);
        }
    }

    #[test]
    fn pool_has_requested_size() {
        let mut rng = StdRng::seed_from_u64(5);
        let pop = vec![ranked(0, 0.0), ranked(1, 0.0)];
        let pool = RankRoulette::default().pool(&mut rng, &pop, 17);
        assert_eq!(pool.len(), 17);
        assert!(pool.iter().all(|&i| i < 2));
    }
}
