//! Standard multi-objective benchmark problems used to validate the GA
//! substrate independently of the analog-circuit application: Schaffer's
//! SCH, the ZDT suite, and the constrained BNH / SRN / TNK / CONSTR
//! problems.
//!
//! All problems follow the minimization + violation-amount conventions of
//! [`Problem`].

use crate::error::OptimizeError;
use crate::evaluation::Evaluation;
use crate::problem::{Bounds, Problem};

/// Schaffer's single-variable biobjective problem (SCH).
///
/// `f1 = x²`, `f2 = (x − 2)²`, `x ∈ [−10³, 10³]`.
/// True Pareto front: `x ∈ [0, 2]`, i.e. `f2 = (√f1 − 2)²`.
#[derive(Debug, Clone)]
pub struct Schaffer {
    bounds: Bounds,
}

impl Schaffer {
    /// Creates the SCH problem.
    pub fn new() -> Self {
        Schaffer {
            bounds: Bounds::uniform(1, -1e3, 1e3).expect("static bounds"),
        }
    }
}

impl Default for Schaffer {
    fn default() -> Self {
        Self::new()
    }
}

impl Problem for Schaffer {
    fn name(&self) -> &str {
        "SCH"
    }
    fn bounds(&self) -> &Bounds {
        &self.bounds
    }
    fn num_objectives(&self) -> usize {
        2
    }
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        let v = x[0];
        Evaluation::unconstrained(vec![v * v, (v - 2.0) * (v - 2.0)])
    }
}

macro_rules! zdt_struct {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            bounds: Bounds,
        }

        impl $name {
            /// Creates the problem with `n` decision variables (`n ≥ 2`).
            ///
            /// # Panics
            ///
            /// Panics if `n < 2`.
            pub fn new(n: usize) -> Self {
                assert!(n >= 2, "ZDT problems need at least 2 variables");
                $name {
                    bounds: Bounds::uniform(n, 0.0, 1.0).expect("static bounds"),
                }
            }
        }
    };
}

zdt_struct! {
    /// ZDT1: convex Pareto front `f2 = 1 − √f1`.
    Zdt1
}

impl Problem for Zdt1 {
    fn name(&self) -> &str {
        "ZDT1"
    }
    fn bounds(&self) -> &Bounds {
        &self.bounds
    }
    fn num_objectives(&self) -> usize {
        2
    }
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        let f1 = x[0];
        let n = x.len();
        let g = 1.0 + 9.0 * x[1..].iter().sum::<f64>() / (n - 1) as f64;
        let f2 = g * (1.0 - (f1 / g).sqrt());
        Evaluation::unconstrained(vec![f1, f2])
    }
}

zdt_struct! {
    /// ZDT2: concave Pareto front `f2 = 1 − f1²`.
    Zdt2
}

impl Problem for Zdt2 {
    fn name(&self) -> &str {
        "ZDT2"
    }
    fn bounds(&self) -> &Bounds {
        &self.bounds
    }
    fn num_objectives(&self) -> usize {
        2
    }
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        let f1 = x[0];
        let n = x.len();
        let g = 1.0 + 9.0 * x[1..].iter().sum::<f64>() / (n - 1) as f64;
        let f2 = g * (1.0 - (f1 / g) * (f1 / g));
        Evaluation::unconstrained(vec![f1, f2])
    }
}

zdt_struct! {
    /// ZDT3: disconnected Pareto front
    /// `f2 = 1 − √f1 − f1·sin(10πf1)` (on five disjoint pieces).
    Zdt3
}

impl Problem for Zdt3 {
    fn name(&self) -> &str {
        "ZDT3"
    }
    fn bounds(&self) -> &Bounds {
        &self.bounds
    }
    fn num_objectives(&self) -> usize {
        2
    }
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        let f1 = x[0];
        let n = x.len();
        let g = 1.0 + 9.0 * x[1..].iter().sum::<f64>() / (n - 1) as f64;
        let h = 1.0 - (f1 / g).sqrt() - (f1 / g) * (10.0 * std::f64::consts::PI * f1).sin();
        Evaluation::unconstrained(vec![f1, g * h])
    }
}

/// ZDT4: ZDT1 shape with 21⁹ local fronts (multi-modal `g`).
/// `x1 ∈ [0, 1]`, `x2..n ∈ [−5, 5]`.
#[derive(Debug, Clone)]
pub struct Zdt4 {
    bounds: Bounds,
}

impl Zdt4 {
    /// Creates ZDT4 with `n` decision variables (`n ≥ 2`).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "ZDT problems need at least 2 variables");
        let mut lower = vec![-5.0; n];
        let mut upper = vec![5.0; n];
        lower[0] = 0.0;
        upper[0] = 1.0;
        Zdt4 {
            bounds: Bounds::new(lower, upper).expect("static bounds"),
        }
    }
}

impl Problem for Zdt4 {
    fn name(&self) -> &str {
        "ZDT4"
    }
    fn bounds(&self) -> &Bounds {
        &self.bounds
    }
    fn num_objectives(&self) -> usize {
        2
    }
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        let f1 = x[0];
        let n = x.len();
        let g = 1.0
            + 10.0 * (n - 1) as f64
            + x[1..]
                .iter()
                .map(|&v| v * v - 10.0 * (4.0 * std::f64::consts::PI * v).cos())
                .sum::<f64>();
        let f2 = g * (1.0 - (f1 / g).sqrt());
        Evaluation::unconstrained(vec![f1, f2])
    }
}

zdt_struct! {
    /// ZDT6: non-uniformly spaced concave front with biased density.
    Zdt6
}

impl Problem for Zdt6 {
    fn name(&self) -> &str {
        "ZDT6"
    }
    fn bounds(&self) -> &Bounds {
        &self.bounds
    }
    fn num_objectives(&self) -> usize {
        2
    }
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        let n = x.len();
        let f1 = 1.0 - (-4.0 * x[0]).exp() * (6.0 * std::f64::consts::PI * x[0]).sin().powi(6);
        let g = 1.0 + 9.0 * (x[1..].iter().sum::<f64>() / (n - 1) as f64).powf(0.25);
        let f2 = g * (1.0 - (f1 / g) * (f1 / g));
        Evaluation::unconstrained(vec![f1, f2])
    }
}

/// Binh & Korn's constrained biobjective problem (BNH).
///
/// Minimize `f1 = 4x² + 4y²`, `f2 = (x−5)² + (y−5)²` s.t.
/// `(x−5)² + y² ≤ 25` and `(x−8)² + (y+3)² ≥ 7.7`.
#[derive(Debug, Clone)]
pub struct BinhKorn {
    bounds: Bounds,
}

impl BinhKorn {
    /// Creates the BNH problem.
    pub fn new() -> Self {
        BinhKorn {
            bounds: Bounds::new(vec![0.0, 0.0], vec![5.0, 3.0]).expect("static bounds"),
        }
    }
}

impl Default for BinhKorn {
    fn default() -> Self {
        Self::new()
    }
}

impl Problem for BinhKorn {
    fn name(&self) -> &str {
        "BNH"
    }
    fn bounds(&self) -> &Bounds {
        &self.bounds
    }
    fn num_objectives(&self) -> usize {
        2
    }
    fn num_constraints(&self) -> usize {
        2
    }
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        let (a, b) = (x[0], x[1]);
        let f1 = 4.0 * a * a + 4.0 * b * b;
        let f2 = (a - 5.0) * (a - 5.0) + (b - 5.0) * (b - 5.0);
        let g1 = (a - 5.0) * (a - 5.0) + b * b - 25.0; // <= 0
        let g2 = 7.7 - ((a - 8.0) * (a - 8.0) + (b + 3.0) * (b + 3.0)); // <= 0
        Evaluation::new(vec![f1, f2], vec![g1.max(0.0), g2.max(0.0)])
    }
}

/// Srinivas & Deb's constrained problem (SRN).
#[derive(Debug, Clone)]
pub struct Srinivas {
    bounds: Bounds,
}

impl Srinivas {
    /// Creates the SRN problem.
    pub fn new() -> Self {
        Srinivas {
            bounds: Bounds::uniform(2, -20.0, 20.0).expect("static bounds"),
        }
    }
}

impl Default for Srinivas {
    fn default() -> Self {
        Self::new()
    }
}

impl Problem for Srinivas {
    fn name(&self) -> &str {
        "SRN"
    }
    fn bounds(&self) -> &Bounds {
        &self.bounds
    }
    fn num_objectives(&self) -> usize {
        2
    }
    fn num_constraints(&self) -> usize {
        2
    }
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        let (a, b) = (x[0], x[1]);
        let f1 = (a - 2.0) * (a - 2.0) + (b - 1.0) * (b - 1.0) + 2.0;
        let f2 = 9.0 * a - (b - 1.0) * (b - 1.0);
        let g1 = a * a + b * b - 225.0; // <= 0
        let g2 = a - 3.0 * b + 10.0; // <= 0
        Evaluation::new(vec![f1, f2], vec![g1.max(0.0), g2.max(0.0)])
    }
}

/// Tanaka's constrained problem (TNK): disconnected feasible front along
/// a sinusoid boundary.
#[derive(Debug, Clone)]
pub struct Tanaka {
    bounds: Bounds,
}

impl Tanaka {
    /// Creates the TNK problem.
    pub fn new() -> Self {
        Tanaka {
            bounds: Bounds::uniform(2, 1e-9, std::f64::consts::PI).expect("static bounds"),
        }
    }
}

impl Default for Tanaka {
    fn default() -> Self {
        Self::new()
    }
}

impl Problem for Tanaka {
    fn name(&self) -> &str {
        "TNK"
    }
    fn bounds(&self) -> &Bounds {
        &self.bounds
    }
    fn num_objectives(&self) -> usize {
        2
    }
    fn num_constraints(&self) -> usize {
        2
    }
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        let (a, b) = (x[0], x[1]);
        let g1 = -(a * a + b * b - 1.0 - 0.1 * (16.0 * (b / a).atan()).cos()); // <= 0
        let g2 = (a - 0.5) * (a - 0.5) + (b - 0.5) * (b - 0.5) - 0.5; // <= 0
        Evaluation::new(vec![a, b], vec![g1.max(0.0), g2.max(0.0)])
    }
}

/// The CONSTR problem of the NSGA-II paper: linear constraints shaping the
/// lower-left of the front.
#[derive(Debug, Clone)]
pub struct Constr {
    bounds: Bounds,
}

impl Constr {
    /// Creates the CONSTR problem.
    pub fn new() -> Self {
        Constr {
            bounds: Bounds::new(vec![0.1, 0.0], vec![1.0, 5.0]).expect("static bounds"),
        }
    }
}

impl Default for Constr {
    fn default() -> Self {
        Self::new()
    }
}

impl Problem for Constr {
    fn name(&self) -> &str {
        "CONSTR"
    }
    fn bounds(&self) -> &Bounds {
        &self.bounds
    }
    fn num_objectives(&self) -> usize {
        2
    }
    fn num_constraints(&self) -> usize {
        2
    }
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        let (a, b) = (x[0], x[1]);
        let f1 = a;
        let f2 = (1.0 + b) / a;
        let g1 = 6.0 - (b + 9.0 * a); // <= 0
        let g2 = 1.0 + b - 9.0 * a; // <= 0
        Evaluation::new(vec![f1, f2], vec![g1.max(0.0), g2.max(0.0)])
    }
}

/// A deliberately *diversity-hostile* constrained problem used to test
/// partition-based algorithms: the feasible corridor narrows sharply as the
/// first objective shrinks, so purely global competition tends to cluster
/// at the wide (large-`f1`) end — a 2-variable caricature of the paper's
/// integrator landscape.
///
/// Objectives: minimize `f2 = cost(x)`, maximize coverage variable
/// `f1 = x[0] ∈ [0, 1]` (reported as minimize `-x[0]`).
/// Constraint: `x[1]` must track a narrow band whose width shrinks with
/// decreasing `x[0]`.
#[derive(Debug, Clone)]
pub struct NarrowingCorridor {
    bounds: Bounds,
    /// Corridor width multiplier (smaller = harder).
    width: f64,
}

impl NarrowingCorridor {
    /// Creates the corridor problem with the given base width (e.g. 0.05).
    ///
    /// # Panics
    ///
    /// Panics if `width` is not strictly positive.
    pub fn new(width: f64) -> Self {
        assert!(width > 0.0, "corridor width must be positive");
        NarrowingCorridor {
            bounds: Bounds::uniform(4, 0.0, 1.0).expect("static bounds"),
            width,
        }
    }
}

impl Problem for NarrowingCorridor {
    fn name(&self) -> &str {
        "NarrowingCorridor"
    }
    fn bounds(&self) -> &Bounds {
        &self.bounds
    }
    fn num_objectives(&self) -> usize {
        2
    }
    fn num_constraints(&self) -> usize {
        1
    }
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        let coverage = x[0];
        // Feasible band centre wiggles with coverage; width shrinks toward
        // low coverage, making the easy end (high coverage) attract the GA.
        let centre = 0.5 + 0.3 * (3.0 * std::f64::consts::PI * coverage).sin();
        let band = self.width * (0.05 + coverage);
        let off_track = (x[1] - centre).abs();
        let violation = (off_track - band).max(0.0) / band;
        // Cost grows with coverage (the "power" analogue) plus nuisance vars.
        let cost = 0.2 + coverage + 0.5 * (x[2] - 0.3).powi(2) + 0.5 * (x[3] - 0.7).powi(2);
        Evaluation::new(vec![-coverage, cost], vec![violation])
    }
}

/// Convenience: returns a boxed instance of every unconstrained benchmark.
///
/// # Errors
///
/// Currently infallible; the `Result` mirrors future fallible loaders.
pub fn all_unconstrained(n: usize) -> Result<Vec<Box<dyn Problem>>, OptimizeError> {
    Ok(vec![
        Box::new(Schaffer::new()),
        Box::new(Zdt1::new(n)),
        Box::new(Zdt2::new(n)),
        Box::new(Zdt3::new(n)),
        Box::new(Zdt4::new(n)),
        Box::new(Zdt6::new(n)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mid(p: &dyn Problem) -> Vec<f64> {
        p.bounds()
            .lower()
            .iter()
            .zip(p.bounds().upper())
            .map(|(&lo, &hi)| 0.5 * (lo + hi))
            .collect()
    }

    #[test]
    fn all_problems_evaluate_with_declared_shapes() {
        let problems: Vec<Box<dyn Problem>> = vec![
            Box::new(Schaffer::new()),
            Box::new(Zdt1::new(5)),
            Box::new(Zdt2::new(5)),
            Box::new(Zdt3::new(5)),
            Box::new(Zdt4::new(5)),
            Box::new(Zdt6::new(5)),
            Box::new(BinhKorn::new()),
            Box::new(Srinivas::new()),
            Box::new(Tanaka::new()),
            Box::new(Constr::new()),
            Box::new(NarrowingCorridor::new(0.05)),
        ];
        for p in &problems {
            let ev = p.evaluate(&mid(p.as_ref()));
            assert!(
                p.check_evaluation(&ev).is_ok(),
                "shape mismatch for {}",
                p.name()
            );
            assert!(
                ev.objectives().iter().all(|v| v.is_finite()),
                "non-finite objectives for {}",
                p.name()
            );
        }
    }

    #[test]
    fn schaffer_true_front_points() {
        let p = Schaffer::new();
        // x = 1 lies on the true front: f1 = 1, f2 = 1.
        let ev = p.evaluate(&[1.0]);
        assert_eq!(ev.objectives(), &[1.0, 1.0]);
    }

    #[test]
    fn zdt1_optimal_when_tail_zero() {
        let p = Zdt1::new(6);
        let ev = p.evaluate(&[0.25, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let f = ev.objectives();
        assert!((f[1] - (1.0 - f[0].sqrt())).abs() < 1e-12);
    }

    #[test]
    fn zdt2_front_is_concave() {
        let p = Zdt2::new(4);
        let ev = p.evaluate(&[0.5, 0.0, 0.0, 0.0]);
        assert!((ev.objectives()[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zdt4_g_grows_away_from_zero_tail() {
        let p = Zdt4::new(3);
        let near = p.evaluate(&[0.5, 0.0, 0.0]);
        let far = p.evaluate(&[0.5, 3.1, -2.7]);
        assert!(far.objectives()[1] > near.objectives()[1]);
    }

    #[test]
    fn binh_korn_feasible_origin_region() {
        let p = BinhKorn::new();
        let ev = p.evaluate(&[1.0, 1.0]);
        assert!(ev.is_feasible());
        // (0,3): g1 = 25 + 9 - 25 = 9 > 0, violates the disc constraint.
        let ev_bad = p.evaluate(&[0.0, 3.0]);
        assert!(!ev_bad.is_feasible());
    }

    #[test]
    fn tanaka_constraint_boundary() {
        let p = Tanaka::new();
        // Point well outside the unit ring is feasible for g1 but maybe not g2
        let ev = p.evaluate(&[1.05, 1.05]);
        assert!(!ev.is_feasible()); // g2: (0.55)^2*2 - 0.5 = 0.105 > 0
    }

    #[test]
    fn corridor_constrains_track() {
        let p = NarrowingCorridor::new(0.05);
        // On-centre at coverage 0: centre = 0.5
        let ev = p.evaluate(&[0.0, 0.5, 0.3, 0.7]);
        assert!(ev.is_feasible());
        let ev_off = p.evaluate(&[0.0, 0.9, 0.3, 0.7]);
        assert!(!ev_off.is_feasible());
    }

    #[test]
    fn corridor_wider_at_high_coverage() {
        let p = NarrowingCorridor::new(0.05);
        // Same absolute offset from centre: infeasible at low coverage,
        // feasible at high coverage.
        let centre_lo = 0.5 + 0.3 * (0.0f64).sin();
        let off = 0.04;
        let ev_lo = p.evaluate(&[0.0, centre_lo + off, 0.3, 0.7]);
        let centre_hi = 0.5 + 0.3 * (3.0 * std::f64::consts::PI).sin();
        let ev_hi = p.evaluate(&[1.0, centre_hi + off, 0.3, 0.7]);
        assert!(!ev_lo.is_feasible());
        assert!(ev_hi.is_feasible());
    }

    #[test]
    fn all_unconstrained_builds() {
        let list = all_unconstrained(6).unwrap();
        assert_eq!(list.len(), 6);
    }
}

/// DTLZ1: a scalable many-objective problem with a linear Pareto front
/// `Σ fᵢ = 0.5` and `11^k − 1` local fronts.
///
/// `m` objectives, `m − 1 + k` variables (`k = 5` conventional).
#[derive(Debug, Clone)]
pub struct Dtlz1 {
    bounds: Bounds,
    m: usize,
}

impl Dtlz1 {
    /// Creates DTLZ1 with `m ≥ 2` objectives and `k ≥ 1` distance
    /// variables.
    ///
    /// # Panics
    ///
    /// Panics if `m < 2` or `k < 1`.
    pub fn new(m: usize, k: usize) -> Self {
        assert!(m >= 2, "DTLZ needs at least 2 objectives");
        assert!(k >= 1, "DTLZ needs at least 1 distance variable");
        Dtlz1 {
            bounds: Bounds::uniform(m - 1 + k, 0.0, 1.0).expect("static bounds"),
            m,
        }
    }

    fn g(&self, tail: &[f64]) -> f64 {
        let k = tail.len() as f64;
        100.0
            * (k + tail
                .iter()
                .map(|&v| (v - 0.5) * (v - 0.5) - (20.0 * std::f64::consts::PI * (v - 0.5)).cos())
                .sum::<f64>())
    }
}

impl Problem for Dtlz1 {
    fn name(&self) -> &str {
        "DTLZ1"
    }
    fn bounds(&self) -> &Bounds {
        &self.bounds
    }
    fn num_objectives(&self) -> usize {
        self.m
    }
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        let m = self.m;
        let g = self.g(&x[m - 1..]);
        let scale = 0.5 * (1.0 + g);
        let mut objs = Vec::with_capacity(m);
        for i in 0..m {
            let mut f = scale;
            for &xv in &x[..m - 1 - i] {
                f *= xv;
            }
            if i > 0 {
                f *= 1.0 - x[m - 1 - i];
            }
            objs.push(f);
        }
        Evaluation::unconstrained(objs)
    }
}

/// DTLZ2: a scalable many-objective problem with a spherical Pareto front
/// `Σ fᵢ² = 1`.
#[derive(Debug, Clone)]
pub struct Dtlz2 {
    bounds: Bounds,
    m: usize,
}

impl Dtlz2 {
    /// Creates DTLZ2 with `m ≥ 2` objectives and `k ≥ 1` distance
    /// variables.
    ///
    /// # Panics
    ///
    /// Panics if `m < 2` or `k < 1`.
    pub fn new(m: usize, k: usize) -> Self {
        assert!(m >= 2, "DTLZ needs at least 2 objectives");
        assert!(k >= 1, "DTLZ needs at least 1 distance variable");
        Dtlz2 {
            bounds: Bounds::uniform(m - 1 + k, 0.0, 1.0).expect("static bounds"),
            m,
        }
    }
}

impl Problem for Dtlz2 {
    fn name(&self) -> &str {
        "DTLZ2"
    }
    fn bounds(&self) -> &Bounds {
        &self.bounds
    }
    fn num_objectives(&self) -> usize {
        self.m
    }
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        use std::f64::consts::FRAC_PI_2;
        let m = self.m;
        let g: f64 = x[m - 1..].iter().map(|&v| (v - 0.5) * (v - 0.5)).sum();
        let mut objs = Vec::with_capacity(m);
        for i in 0..m {
            let mut f = 1.0 + g;
            for &xv in &x[..m - 1 - i] {
                f *= (xv * FRAC_PI_2).cos();
            }
            if i > 0 {
                f *= (x[m - 1 - i] * FRAC_PI_2).sin();
            }
            objs.push(f);
        }
        Evaluation::unconstrained(objs)
    }
}

#[cfg(test)]
mod dtlz_tests {
    use super::*;

    #[test]
    fn dtlz1_front_sums_to_half() {
        let p = Dtlz1::new(3, 5);
        // All distance variables at 0.5 => g = 0 => Σf = 0.5.
        let x = [0.3, 0.7, 0.5, 0.5, 0.5, 0.5, 0.5];
        let f = p.evaluate(&x);
        let sum: f64 = f.objectives().iter().sum();
        assert!((sum - 0.5).abs() < 1e-9, "sum {sum}");
        assert!(f.objectives().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn dtlz1_offset_tail_raises_g() {
        let p = Dtlz1::new(3, 5);
        let on = p.evaluate(&[0.3, 0.7, 0.5, 0.5, 0.5, 0.5, 0.5]);
        let off = p.evaluate(&[0.3, 0.7, 0.9, 0.1, 0.9, 0.1, 0.9]);
        let s_on: f64 = on.objectives().iter().sum();
        let s_off: f64 = off.objectives().iter().sum();
        assert!(s_off > s_on * 10.0, "{s_off} vs {s_on}");
    }

    #[test]
    fn dtlz2_front_is_unit_sphere() {
        let p = Dtlz2::new(3, 8);
        let mut x = vec![0.5; 10];
        x[0] = 0.2;
        x[1] = 0.8;
        let f = p.evaluate(&x);
        let norm2: f64 = f.objectives().iter().map(|&v| v * v).sum();
        assert!((norm2 - 1.0).abs() < 1e-9, "|f|^2 = {norm2}");
    }

    #[test]
    fn dtlz_declares_consistent_shapes() {
        for m in [2usize, 3, 4] {
            let p1 = Dtlz1::new(m, 5);
            let p2 = Dtlz2::new(m, 5);
            assert_eq!(p1.num_variables(), m - 1 + 5);
            let ev = p1.evaluate(&vec![0.5; p1.num_variables()]);
            assert_eq!(ev.objectives().len(), m);
            let ev = p2.evaluate(&vec![0.5; p2.num_variables()]);
            assert_eq!(ev.objectives().len(), m);
        }
    }
}
