//! Error types shared by the optimization machinery.

use std::error::Error;
use std::fmt;

/// Error raised when an optimizer or one of its configuration builders is
/// given inconsistent input.
///
/// The [`Display`](fmt::Display) form is a lowercase, punctuation-free
/// sentence per the Rust API guidelines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OptimizeError {
    /// A configuration value is outside its legal range.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Explanation of the legal range and what was supplied.
        reason: String,
    },
    /// A problem definition is internally inconsistent (e.g. mismatched
    /// bounds length, zero objectives).
    InvalidProblem {
        /// Explanation of the inconsistency.
        reason: String,
    },
    /// An evaluation returned vectors whose lengths disagree with the
    /// problem's declared dimensions.
    EvaluationMismatch {
        /// What was expected.
        expected: usize,
        /// What the evaluation produced.
        actual: usize,
        /// Which vector mismatched ("objectives" or "constraints").
        what: &'static str,
    },
    /// A candidate evaluation failed (panicked or stayed non-finite)
    /// after exhausting the engine's retry budget, and the fault policy
    /// aborts rather than quarantines.
    EvaluationFailed(
        /// The engine-level failure: batch position, attempts, kind,
        /// and message.
        engine::EvalFailure,
    ),
    /// A checkpoint could not be parsed or is inconsistent with the run
    /// configuration it is being resumed under.
    InvalidCheckpoint {
        /// Explanation of the corruption or mismatch.
        reason: String,
    },
}

impl fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizeError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration for `{field}`: {reason}")
            }
            OptimizeError::InvalidProblem { reason } => {
                write!(f, "invalid problem definition: {reason}")
            }
            OptimizeError::EvaluationMismatch {
                expected,
                actual,
                what,
            } => write!(
                f,
                "evaluation produced {actual} {what} but the problem declares {expected}"
            ),
            OptimizeError::EvaluationFailed(failure) => {
                write!(f, "evaluation failed: {failure}")
            }
            OptimizeError::InvalidCheckpoint { reason } => {
                write!(f, "invalid checkpoint: {reason}")
            }
        }
    }
}

impl Error for OptimizeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OptimizeError::EvaluationFailed(failure) => Some(failure),
            _ => None,
        }
    }
}

impl From<engine::EvalFailure> for OptimizeError {
    fn from(failure: engine::EvalFailure) -> Self {
        OptimizeError::EvaluationFailed(failure)
    }
}

impl OptimizeError {
    /// Convenience constructor for [`OptimizeError::InvalidConfig`].
    pub fn invalid_config(field: &'static str, reason: impl Into<String>) -> Self {
        OptimizeError::InvalidConfig {
            field,
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`OptimizeError::InvalidProblem`].
    pub fn invalid_problem(reason: impl Into<String>) -> Self {
        OptimizeError::InvalidProblem {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`OptimizeError::InvalidCheckpoint`].
    pub fn invalid_checkpoint(reason: impl Into<String>) -> Self {
        OptimizeError::InvalidCheckpoint {
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = OptimizeError::invalid_config("population_size", "must be at least 4, got 0");
        let text = err.to_string();
        assert!(text.contains("population_size"));
        assert!(text.contains("at least 4"));
        assert!(text.starts_with("invalid"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OptimizeError>();
    }

    #[test]
    fn evaluation_failed_wraps_engine_failure() {
        let failure = engine::EvalFailure {
            index: 3,
            attempts: 2,
            kind: engine::FaultKind::Panic,
            message: "backend crashed".to_string(),
            backoff: std::time::Duration::ZERO,
        };
        let err: OptimizeError = failure.clone().into();
        let text = err.to_string();
        assert!(text.contains("backend crashed"), "{text}");
        assert!(err.source().is_some());
        assert_eq!(err, OptimizeError::EvaluationFailed(failure));
    }

    #[test]
    fn invalid_checkpoint_displays_reason() {
        let err = OptimizeError::invalid_checkpoint("truncated at line 7");
        assert!(err.to_string().contains("truncated at line 7"));
    }

    #[test]
    fn mismatch_display_mentions_both_sizes() {
        let err = OptimizeError::EvaluationMismatch {
            expected: 2,
            actual: 3,
            what: "objectives",
        };
        let text = err.to_string();
        assert!(text.contains('2') && text.contains('3') && text.contains("objectives"));
    }
}
