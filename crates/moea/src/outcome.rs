//! The unified run outcome shared by every optimizer in the workspace.
//!
//! Historically each run loop returned its own result struct (`RunResult`
//! for NSGA-II, `SacgaResult`, `MesacgaResult`, `IslandResult`), all
//! carrying the same core payload — final population, feasible front,
//! evaluation counters, engine stats — plus one or two loop-specific
//! extras. [`RunOutcome`] collapses them into a single type: the
//! loop-specific extras ([`gen_t`](RunOutcome::gen_t),
//! [`phase_fronts`](RunOutcome::phase_fronts),
//! [`migrations`](RunOutcome::migrations)) take their neutral value for
//! algorithms they do not apply to, so cross-algorithm comparison code
//! handles one shape.
//!
//! [`RunStatus`] is the bounded-run counterpart: either a completed
//! [`RunOutcome`] or a suspension checkpoint, generic over the
//! checkpoint type so each resumable algorithm plugs in its own.

use crate::individual::Individual;
use engine::EngineStats;

/// Per-generation statistics recorded by every run loop.
///
/// The phase/temperature/promotion fields follow SACGA semantics; loops
/// without an annealed promotion mechanism (NSGA-II, the island model)
/// record phase 2 (pure global competition), temperature 1 and zero
/// promotions for every generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationStats {
    /// Generation index (0 = initial population).
    pub generation: usize,
    /// 1 = pure local phase, 2 = annealed/global phase.
    pub phase: u8,
    /// Annealing temperature (∞ during phase I, 1 for purely global
    /// loops).
    pub temperature: f64,
    /// How many locally superior solutions were promoted this generation.
    pub promoted: usize,
    /// Feasible individuals in the population.
    pub feasible: usize,
    /// Population size after survivor selection.
    pub population: usize,
}

/// Outcome of a completed optimizer run: final population and its
/// feasible non-dominated front, per-generation history, and counters.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Final population (globally ranked and crowded).
    pub population: Vec<Individual>,
    /// Feasible, globally non-dominated front of the final population.
    pub front: Vec<Individual>,
    /// Objective evaluations performed.
    pub evaluations: usize,
    /// Generations executed.
    pub generations: usize,
    /// Length of the pure-local phase I (0 for algorithms without one).
    pub gen_t: usize,
    /// Per-generation statistics, including the initial population
    /// (generation 0).
    pub history: Vec<GenerationStats>,
    /// Feasible global front at the end of each MESACGA phase, in phase
    /// order (empty for single-phase algorithms).
    pub phase_fronts: Vec<Vec<Individual>>,
    /// Migration events performed (island model only; 0 elsewhere).
    pub migrations: usize,
    /// Evaluation-engine instrumentation (batching, caching, timing,
    /// fault counters).
    pub stats: EngineStats,
}

impl RunOutcome {
    /// Objective vectors of the front.
    pub fn front_objectives(&self) -> Vec<Vec<f64>> {
        self.front.iter().map(|m| m.objectives().to_vec()).collect()
    }
}

/// Outcome of a bounded run: finished within the stop bound, or
/// suspended at a generation boundary with a resumable checkpoint of
/// type `C`.
#[derive(Debug, Clone)]
pub enum RunStatus<C> {
    /// The run finished before reaching the stop bound.
    Complete(Box<RunOutcome>),
    /// The run was suspended; resume through the algorithm's
    /// `Optimizer::resume` implementation.
    Suspended(Box<C>),
}

impl<C> RunStatus<C> {
    /// Whether the run completed.
    pub fn is_complete(&self) -> bool {
        matches!(self, RunStatus::Complete(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_status_reports_completion() {
        let outcome = RunOutcome {
            population: vec![],
            front: vec![],
            evaluations: 0,
            generations: 0,
            gen_t: 0,
            history: vec![],
            phase_fronts: vec![],
            migrations: 0,
            stats: EngineStats::default(),
        };
        let complete: RunStatus<()> = RunStatus::Complete(Box::new(outcome));
        assert!(complete.is_complete());
        let suspended: RunStatus<()> = RunStatus::Suspended(Box::new(()));
        assert!(!suspended.is_complete());
    }
}
