//! Front quality metrics beyond hypervolume: spacing, spread (Δ),
//! generational distance, set coverage, and objective-range extent.
//!
//! These back up the paper's *diversity* claims quantitatively: the
//! reproduced figures argue visually that SACGA/MESACGA fronts are better
//! spread than NSGA-II's; [`spread`] and [`extent`] let tests assert it.

/// Euclidean distance between two objective vectors.
fn dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Schott's spacing metric: standard deviation of nearest-neighbour
/// distances within the front. `0` means perfectly even spacing.
///
/// Returns `0.0` for fronts with fewer than 2 points.
pub fn spacing(front: &[Vec<f64>]) -> f64 {
    let n = front.len();
    if n < 2 {
        return 0.0;
    }
    let nearest: Vec<f64> = (0..n)
        .map(|i| {
            (0..n)
                .filter(|&j| j != i)
                .map(|j| dist(&front[i], &front[j]))
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    let mean = nearest.iter().sum::<f64>() / n as f64;
    (nearest.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64).sqrt()
}

/// Deb's Δ spread metric for biobjective fronts, *without* the extreme-point
/// terms (no true front is assumed known):
/// `Δ = Σ|dᵢ − d̄| / (N·d̄)` over consecutive gaps along the front sorted by
/// the first objective. `0` = perfectly uniform; larger = more clustered.
///
/// Returns `0.0` for fronts with fewer than 3 points.
pub fn spread(front: &[Vec<f64>]) -> f64 {
    let n = front.len();
    if n < 3 {
        return 0.0;
    }
    let mut sorted: Vec<&Vec<f64>> = front.iter().collect();
    sorted.sort_by(|a, b| a[0].partial_cmp(&b[0]).unwrap_or(std::cmp::Ordering::Equal));
    let gaps: Vec<f64> = sorted.windows(2).map(|w| dist(w[0], w[1])).collect();
    let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    if mean <= 0.0 {
        return 0.0;
    }
    gaps.iter().map(|g| (g - mean).abs()).sum::<f64>() / (gaps.len() as f64 * mean)
}

/// Generational distance: average Euclidean distance from each front point
/// to its nearest point of `reference` (an approximation of the true front).
/// Lower = better convergence. Returns `0.0` when either set is empty.
pub fn generational_distance(front: &[Vec<f64>], reference: &[Vec<f64>]) -> f64 {
    if front.is_empty() || reference.is_empty() {
        return 0.0;
    }
    let total: f64 = front
        .iter()
        .map(|p| {
            reference
                .iter()
                .map(|q| dist(p, q))
                .fold(f64::INFINITY, f64::min)
        })
        .sum();
    total / front.len() as f64
}

/// Zitzler's coverage (C-metric): fraction of points in `b` that are weakly
/// dominated by at least one point in `a`. `coverage(a, b) = 1` means `a`
/// entirely covers `b`. Not symmetric. Returns `0.0` when `b` is empty.
pub fn coverage(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    if b.is_empty() {
        return 0.0;
    }
    let covered = b
        .iter()
        .filter(|q| {
            a.iter().any(|p| {
                // weak domination: no worse everywhere
                p.iter().zip(q.iter()).all(|(&x, &y)| x <= y)
            })
        })
        .count();
    covered as f64 / b.len() as f64
}

/// Extent of the front along objective `k`: `max − min`. A direct measure of
/// the "covered range" the paper cares about (e.g. how much of the 0–5 pF
/// load-capacitance axis the front spans). Returns `0.0` for empty fronts.
pub fn extent(front: &[Vec<f64>], k: usize) -> f64 {
    if front.is_empty() {
        return 0.0;
    }
    let lo = front.iter().map(|p| p[k]).fold(f64::INFINITY, f64::min);
    let hi = front.iter().map(|p| p[k]).fold(f64::NEG_INFINITY, f64::max);
    hi - lo
}

/// Fraction of `m` equal-width bins of `[lo, hi]` along objective `k` that
/// contain at least one front point — the paper's notion of "solutions well
/// distributed over the entire range", quantified.
///
/// # Panics
///
/// Panics if `m == 0` or `hi <= lo`.
pub fn bin_occupancy(front: &[Vec<f64>], k: usize, lo: f64, hi: f64, m: usize) -> f64 {
    assert!(m > 0, "bin count must be positive");
    assert!(hi > lo, "bin range must be non-degenerate");
    if front.is_empty() {
        return 0.0;
    }
    let mut occupied = vec![false; m];
    let width = (hi - lo) / m as f64;
    for p in front {
        let v = p[k];
        if v < lo || v > hi {
            continue;
        }
        let idx = (((v - lo) / width) as usize).min(m - 1);
        occupied[idx] = true;
    }
    occupied.iter().filter(|&&o| o).count() as f64 / m as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_front(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let t = i as f64 / (n - 1) as f64;
                vec![t, 1.0 - t]
            })
            .collect()
    }

    #[test]
    fn spacing_zero_for_uniform_line() {
        let f = line_front(11);
        assert!(spacing(&f) < 1e-12);
    }

    #[test]
    fn spacing_positive_for_clustered_front() {
        let mut f = line_front(6);
        f.push(vec![0.001, 0.999]); // near-duplicate creates uneven spacing
        assert!(spacing(&f) > 1e-3);
    }

    #[test]
    fn spacing_degenerate_inputs() {
        assert_eq!(spacing(&[]), 0.0);
        assert_eq!(spacing(&[vec![1.0, 2.0]]), 0.0);
    }

    #[test]
    fn spread_zero_for_uniform() {
        assert!(spread(&line_front(11)) < 1e-12);
    }

    #[test]
    fn spread_larger_for_clustered() {
        // half the points squeezed into [0, 0.1]
        let mut f: Vec<Vec<f64>> = (0..5).map(|i| vec![0.02 * i as f64, 1.0]).collect();
        f.extend((1..=5).map(|i| vec![0.1 + 0.18 * i as f64, 0.5]));
        let clustered = spread(&f);
        let uniform = spread(&line_front(10));
        assert!(clustered > uniform + 0.1, "{clustered} vs {uniform}");
    }

    #[test]
    fn gd_zero_when_on_reference() {
        let f = line_front(5);
        assert!(generational_distance(&f, &f) < 1e-12);
    }

    #[test]
    fn gd_measures_offset() {
        let f = vec![vec![0.0, 2.0]];
        let r = vec![vec![0.0, 1.0]];
        assert!((generational_distance(&f, &r) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_full_and_empty() {
        let a = vec![vec![0.0, 0.0]];
        let b = vec![vec![1.0, 1.0], vec![2.0, 0.5]];
        assert_eq!(coverage(&a, &b), 1.0);
        assert_eq!(coverage(&b, &a), 0.0);
    }

    #[test]
    fn coverage_partial() {
        let a = vec![vec![0.0, 1.0]];
        let b = vec![vec![0.5, 1.5], vec![-1.0, 0.0]];
        assert_eq!(coverage(&a, &b), 0.5);
    }

    #[test]
    fn extent_spans_range() {
        let f = line_front(5);
        assert!((extent(&f, 0) - 1.0).abs() < 1e-12);
        assert!((extent(&f, 1) - 1.0).abs() < 1e-12);
        assert_eq!(extent(&[], 0), 0.0);
    }

    #[test]
    fn bin_occupancy_counts_bins() {
        // Points at bin centres avoid float boundary ambiguity.
        let f: Vec<Vec<f64>> = (0..10).map(|i| vec![0.05 + 0.1 * i as f64, 0.0]).collect();
        assert_eq!(bin_occupancy(&f, 0, 0.0, 1.0, 10), 1.0);
        // clustered front occupies few bins
        let clustered = vec![vec![0.91, 0.0], vec![0.95, 0.0], vec![0.99, 0.0]];
        assert!(bin_occupancy(&clustered, 0, 0.0, 1.0, 10) <= 0.2);
    }

    #[test]
    #[should_panic(expected = "bin count")]
    fn bin_occupancy_rejects_zero_bins() {
        let _ = bin_occupancy(&[], 0, 0.0, 1.0, 0);
    }

    #[test]
    fn bin_occupancy_ignores_out_of_range() {
        let f = vec![vec![-5.0, 0.0], vec![10.0, 0.0], vec![0.55, 0.0]];
        assert!((bin_occupancy(&f, 0, 0.0, 1.0, 10) - 0.1).abs() < 1e-12);
    }
}
