#![warn(missing_docs)]
//! # moea — multi-objective evolutionary optimization substrate
//!
//! A from-scratch, real-coded multi-objective genetic-algorithm toolkit.
//! It provides everything a partition-based diversity-controlled GA (such as
//! SACGA / MESACGA from the `sacga` crate) needs to stand on:
//!
//! * [`problem::Problem`] — the optimization-problem abstraction
//!   (box-bounded real decision variables, several minimized objectives,
//!   inequality constraints expressed as violation amounts);
//! * [`operators`] — simulated binary crossover (SBX), polynomial mutation
//!   and uniform initialization, the classic real-coded NSGA-II operator
//!   suite;
//! * [`dominance`] — Pareto dominance and Deb's constrained dominance;
//! * [`sorting`] — fast non-dominated sorting and crowding-distance
//!   assignment;
//! * [`selection`] — crowded binary tournament and rank-based roulette
//!   selection;
//! * [`nsga2`] — a complete elitist non-dominated sorting GA
//!   (NSGA-II), the "traditional purely global competition" baseline of the
//!   reproduced paper;
//! * [`hypervolume`] — the paper's origin-anchored staircase hypervolume
//!   together with conventional reference-point hypervolume in 2-D and n-D;
//! * [`metrics`] — spacing, spread, generational distance, set coverage;
//! * [`problems`] — standard benchmark suites (SCH, ZDT, BNH, SRN, TNK,
//!   OSY, CONSTR) used to validate the machinery independently of any
//!   application domain;
//! * [`archive`] — a bounded Pareto archive.
//!
//! All stochastic components are driven by caller-supplied [`rand::Rng`]
//! values, so every run is reproducible from a seed.
//!
//! ## Example
//!
//! Minimize Schaffer's two-objective problem with NSGA-II:
//!
//! ```
//! use moea::nsga2::{Nsga2, Nsga2Config};
//! use moea::problems::Schaffer;
//!
//! # fn main() -> Result<(), moea::error::OptimizeError> {
//! let config = Nsga2Config::builder()
//!     .population_size(40)
//!     .generations(50)
//!     .build()?;
//! let result = Nsga2::new(Schaffer::new(), config).run_seeded(42)?;
//! assert!(!result.front.is_empty());
//! # Ok(())
//! # }
//! ```

pub mod archive;
pub mod dominance;
pub mod error;
pub mod evaluation;
pub mod hypervolume;
pub mod individual;
pub mod metrics;
pub mod nsga2;
pub mod operators;
pub mod outcome;
pub mod problem;
pub mod problems;
pub mod scalarize;
pub mod selection;
pub mod setup;
pub mod sorting;

pub use archive::ParetoArchive;
pub use dominance::{constrained_dominates, dominates, Dominance};
pub use error::OptimizeError;
pub use evaluation::Evaluation;
pub use individual::{Individual, Population};
pub use outcome::{GenerationStats, RunOutcome, RunStatus};
pub use problem::{Bounds, Problem};
pub use setup::EngineSetup;
