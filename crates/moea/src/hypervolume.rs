//! Hypervolume quality indicators.
//!
//! Two flavors are provided:
//!
//! 1. [`staircase_area`] / [`staircase_volume`] — the metric *as defined in
//!    the reproduced paper* (Sec. 4.2): for each solution build the
//!    axis-aligned box with the **origin** and the solution as diagonal
//!    corners, take the union of all boxes, and measure its (hyper)volume.
//!    **Lower is better** — a front pushed toward the origin covers less.
//!    This differs from the conventional indicator; the paper reports it in
//!    units of 0.1 mW·pF for the integrator problem.
//! 2. [`hypervolume_2d`] / [`hypervolume`] — the conventional dominated
//!    hypervolume w.r.t. a reference point (higher is better), for
//!    cross-checking and for the benchmark problems.
//!
//! All functions accept arbitrary point sets; dominated points simply do not
//! change the result.

use crate::dominance::{dominates, Dominance};

/// Union-of-boxes "hypervolume" of the paper for the 2-D case: the area of
/// `⋃ᵢ [0, xᵢ] × [0, yᵢ]`. Lower is better for minimization fronts.
///
/// Points with non-positive coordinates are clamped to zero (a box of zero
/// extent contributes nothing). Non-finite points are ignored.
///
/// # Examples
///
/// ```
/// use moea::hypervolume::staircase_area;
///
/// // A single point (2, 3) spans a 2x3 box.
/// assert_eq!(staircase_area(&[[2.0, 3.0]]), 6.0);
/// // Adding a point inside that box changes nothing.
/// assert_eq!(staircase_area(&[[2.0, 3.0], [1.0, 1.0]]), 6.0);
/// ```
pub fn staircase_area(points: &[[f64; 2]]) -> f64 {
    let mut pts: Vec<[f64; 2]> = points
        .iter()
        .filter(|p| p[0].is_finite() && p[1].is_finite())
        .map(|p| [p[0].max(0.0), p[1].max(0.0)])
        .collect();
    if pts.is_empty() {
        return 0.0;
    }
    // Sort by x ascending, then y descending. Sweep keeping the max y seen
    // from the right; the union is a staircase whose area is
    // Σ (x_i - x_{i-1}) * max_{j >= i} y_j.
    pts.sort_by(|a, b| {
        a[0].partial_cmp(&b[0])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b[1].partial_cmp(&a[1]).unwrap_or(std::cmp::Ordering::Equal))
    });
    // suffix_max_y[i] = max y over pts[i..]
    let n = pts.len();
    let mut suffix_max_y = vec![0.0f64; n];
    let mut running = 0.0f64;
    for i in (0..n).rev() {
        running = running.max(pts[i][1]);
        suffix_max_y[i] = running;
    }
    let mut area = 0.0;
    let mut prev_x = 0.0;
    for i in 0..n {
        let x = pts[i][0];
        if x > prev_x {
            area += (x - prev_x) * suffix_max_y[i];
            prev_x = x;
        }
    }
    area
}

/// Union-of-boxes volume for any dimension (the paper's metric generalized).
///
/// Uses inclusion-free sweep in 2-D; in higher dimensions it recursively
/// slices on the last coordinate (an HSO-style sweep). Complexity is
/// exponential in dimension but fronts here are small.
pub fn staircase_volume(points: &[Vec<f64>]) -> f64 {
    let pts: Vec<Vec<f64>> = points
        .iter()
        .filter(|p| p.iter().all(|v| v.is_finite()))
        .map(|p| p.iter().map(|&v| v.max(0.0)).collect())
        .collect();
    if pts.is_empty() {
        return 0.0;
    }
    let dim = pts[0].len();
    assert!(
        pts.iter().all(|p| p.len() == dim),
        "all points must share a dimension"
    );
    match dim {
        0 => 0.0,
        1 => pts.iter().map(|p| p[0]).fold(0.0, f64::max),
        2 => {
            let arr: Vec<[f64; 2]> = pts.iter().map(|p| [p[0], p[1]]).collect();
            staircase_area(&arr)
        }
        _ => {
            // Slice on the last coordinate: sort descending by z; between
            // consecutive distinct z values, the cross-section is the union
            // of the projections of all points with z >= current slab top.
            let mut order: Vec<usize> = (0..pts.len()).collect();
            order.sort_by(|&a, &b| {
                pts[b][dim - 1]
                    .partial_cmp(&pts[a][dim - 1])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut volume = 0.0;
            let mut active: Vec<Vec<f64>> = Vec::new();
            let mut i = 0;
            while i < order.len() {
                let z_top = pts[order[i]][dim - 1];
                // add all points at this z level
                while i < order.len() && pts[order[i]][dim - 1] == z_top {
                    active.push(pts[order[i]][..dim - 1].to_vec());
                    i += 1;
                }
                let z_bottom = if i < order.len() {
                    pts[order[i]][dim - 1]
                } else {
                    0.0
                };
                if z_top > z_bottom {
                    volume += staircase_volume(&active) * (z_top - z_bottom);
                }
            }
            volume
        }
    }
}

/// Conventional 2-D dominated hypervolume w.r.t. reference point `ref_point`
/// (minimization; higher is better).
///
/// Points not strictly dominating the reference point contribute nothing.
/// Dominated points in the set are harmless.
pub fn hypervolume_2d(points: &[[f64; 2]], ref_point: [f64; 2]) -> f64 {
    let mut pts: Vec<[f64; 2]> = points
        .iter()
        .copied()
        .filter(|p| {
            p[0] < ref_point[0] && p[1] < ref_point[1] && p[0].is_finite() && p[1].is_finite()
        })
        .collect();
    if pts.is_empty() {
        return 0.0;
    }
    // Keep only the non-dominated subset, sorted by x ascending.
    pts.sort_by(|a, b| {
        a[0].partial_cmp(&b[0])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a[1].partial_cmp(&b[1]).unwrap_or(std::cmp::Ordering::Equal))
    });
    let mut front: Vec<[f64; 2]> = Vec::new();
    let mut best_y = f64::INFINITY;
    for p in pts {
        if p[1] < best_y {
            front.push(p);
            best_y = p[1];
        }
    }
    let mut hv = 0.0;
    let mut prev_y = ref_point[1];
    for p in &front {
        hv += (ref_point[0] - p[0]) * (prev_y - p[1]);
        prev_y = p[1];
    }
    hv
}

/// Conventional dominated hypervolume in any dimension w.r.t. `ref_point`
/// (minimization; higher is better). Recursive slicing; exponential in
/// dimension, fine for the 2–4 objective fronts used here.
///
/// # Panics
///
/// Panics when point/reference dimensions disagree.
pub fn hypervolume(points: &[Vec<f64>], ref_point: &[f64]) -> f64 {
    let dim = ref_point.len();
    let pts: Vec<Vec<f64>> = points
        .iter()
        .filter(|p| {
            assert_eq!(p.len(), dim, "point/reference dimension mismatch");
            p.iter().zip(ref_point).all(|(&v, &r)| v < r) && p.iter().all(|v| v.is_finite())
        })
        .cloned()
        .collect();
    if pts.is_empty() {
        return 0.0;
    }
    match dim {
        1 => {
            let best = pts.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min);
            ref_point[0] - best
        }
        2 => {
            let arr: Vec<[f64; 2]> = pts.iter().map(|p| [p[0], p[1]]).collect();
            hypervolume_2d(&arr, [ref_point[0], ref_point[1]])
        }
        _ => {
            // Slice on the last coordinate ascending: between consecutive z
            // cuts, the cross-section is the hv of projections of points
            // with z <= slab bottom.
            let mut zs: Vec<f64> = pts.iter().map(|p| p[dim - 1]).collect();
            zs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            zs.dedup();
            zs.push(ref_point[dim - 1]);
            let mut hv = 0.0;
            for w in zs.windows(2) {
                let (z_lo, z_hi) = (w[0], w[1]);
                if z_hi <= z_lo {
                    continue;
                }
                let slab: Vec<Vec<f64>> = pts
                    .iter()
                    .filter(|p| p[dim - 1] <= z_lo)
                    .map(|p| p[..dim - 1].to_vec())
                    .collect();
                hv += hypervolume(&slab, &ref_point[..dim - 1]) * (z_hi - z_lo);
            }
            hv
        }
    }
}

/// Helper: evaluates the paper's metric over a front given as objective
/// vectors (any dimension ≥ 2), after an optional per-axis rescale.
///
/// `scale[i]` multiplies coordinate `i` before the union is computed — the
/// paper reports hypervolume in "0.1 mW · pF" units, i.e. power scaled by
/// 10⁴ (W → 0.1 mW) and capacitance by 10¹² (F → pF).
pub fn scaled_staircase_volume(points: &[Vec<f64>], scale: &[f64]) -> f64 {
    let scaled: Vec<Vec<f64>> = points
        .iter()
        .map(|p| {
            assert_eq!(p.len(), scale.len(), "point/scale dimension mismatch");
            p.iter().zip(scale).map(|(&v, &s)| v * s).collect()
        })
        .collect();
    staircase_volume(&scaled)
}

/// Returns `true` when `candidate` is dominated by any point in `front`.
pub fn is_dominated_by_front(candidate: &[f64], front: &[Vec<f64>]) -> bool {
    front
        .iter()
        .any(|p| dominates(p, candidate) == Dominance::First)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staircase_empty_is_zero() {
        assert_eq!(staircase_area(&[]), 0.0);
        assert_eq!(staircase_volume(&[]), 0.0);
    }

    #[test]
    fn staircase_single_point() {
        assert_eq!(staircase_area(&[[2.0, 3.0]]), 6.0);
    }

    #[test]
    fn staircase_two_disjoint_steps() {
        // (1,3) and (2,1): union area = 1*3 + 1*1 = 4
        assert_eq!(staircase_area(&[[1.0, 3.0], [2.0, 1.0]]), 4.0);
        // order must not matter
        assert_eq!(staircase_area(&[[2.0, 1.0], [1.0, 3.0]]), 4.0);
    }

    #[test]
    fn staircase_dominated_point_is_free() {
        let base = staircase_area(&[[2.0, 3.0]]);
        let plus = staircase_area(&[[2.0, 3.0], [1.5, 2.0]]);
        assert_eq!(base, plus);
    }

    #[test]
    fn staircase_monotone_under_growth() {
        let small = staircase_area(&[[1.0, 1.0], [2.0, 0.5]]);
        let big = staircase_area(&[[1.0, 1.5], [2.0, 0.5]]);
        assert!(big > small);
    }

    #[test]
    fn staircase_negative_coordinates_clamped() {
        assert_eq!(staircase_area(&[[-1.0, 5.0]]), 0.0);
        assert_eq!(staircase_area(&[[2.0, -1.0], [1.0, 1.0]]), 1.0);
    }

    #[test]
    fn staircase_nonfinite_points_ignored() {
        assert_eq!(staircase_area(&[[f64::NAN, 1.0], [2.0, 3.0]]), 6.0);
        assert_eq!(staircase_area(&[[f64::INFINITY, 1.0]]), 0.0);
    }

    #[test]
    fn staircase_duplicate_x_takes_max_y() {
        assert_eq!(staircase_area(&[[2.0, 3.0], [2.0, 5.0]]), 10.0);
    }

    #[test]
    fn staircase_volume_matches_area_in_2d() {
        let pts = vec![vec![1.0, 3.0], vec![2.0, 1.0], vec![1.5, 2.0]];
        let arr: Vec<[f64; 2]> = pts.iter().map(|p| [p[0], p[1]]).collect();
        assert!((staircase_volume(&pts) - staircase_area(&arr)).abs() < 1e-12);
    }

    #[test]
    fn staircase_volume_3d_boxes() {
        // Single box 1x2x3 = 6.
        assert!((staircase_volume(&[vec![1.0, 2.0, 3.0]]) - 6.0).abs() < 1e-12);
        // Two nested boxes: inner adds nothing.
        let v = staircase_volume(&[vec![1.0, 2.0, 3.0], vec![0.5, 1.0, 1.0]]);
        assert!((v - 6.0).abs() < 1e-12);
        // Two disjoint-ish boxes: [2,1,1] and [1,1,2]:
        // union = 2*1*1 + 1*1*1 = 3.
        let v = staircase_volume(&[vec![2.0, 1.0, 1.0], vec![1.0, 1.0, 2.0]]);
        assert!((v - 3.0).abs() < 1e-12, "{v}");
    }

    #[test]
    fn staircase_volume_1d_is_max() {
        assert_eq!(staircase_volume(&[vec![3.0], vec![5.0], vec![1.0]]), 5.0);
    }

    #[test]
    fn hv2d_single_point() {
        assert_eq!(hypervolume_2d(&[[1.0, 1.0]], [3.0, 3.0]), 4.0);
    }

    #[test]
    fn hv2d_ignores_points_beyond_reference() {
        assert_eq!(hypervolume_2d(&[[4.0, 0.0]], [3.0, 3.0]), 0.0);
    }

    #[test]
    fn hv2d_two_points() {
        // ref (4,4): (1,3) adds (4-1)*(4-3)=3; (3,1) adds (4-3)*(3-1)=2 => 5
        let hv = hypervolume_2d(&[[1.0, 3.0], [3.0, 1.0]], [4.0, 4.0]);
        assert!((hv - 5.0).abs() < 1e-12);
    }

    #[test]
    fn hv2d_dominated_points_add_nothing() {
        let a = hypervolume_2d(&[[1.0, 1.0]], [4.0, 4.0]);
        let b = hypervolume_2d(&[[1.0, 1.0], [2.0, 2.0]], [4.0, 4.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn hv_nd_matches_2d() {
        let pts = vec![vec![1.0, 3.0], vec![3.0, 1.0], vec![2.0, 2.0]];
        let arr: Vec<[f64; 2]> = pts.iter().map(|p| [p[0], p[1]]).collect();
        let a = hypervolume(&pts, &[4.0, 4.0]);
        let b = hypervolume_2d(&arr, [4.0, 4.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn hv_3d_unit_cube_corner() {
        // point (0,0,0), ref (1,1,1): hv = 1
        let hv = hypervolume(&[vec![0.0, 0.0, 0.0]], &[1.0, 1.0, 1.0]);
        assert!((hv - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hv_3d_two_points() {
        // Points (0,0,0.5) and (0.5,0.5,0), ref (1,1,1):
        // box1 = 1*1*0.5 ... hv of union:
        // slice z in [0,0.5): only p2 qualifies (z<=z_lo -> p2 z=0):
        //   cross-section hv2d of (0.5,0.5) ref (1,1) = 0.25, times 0.5 = .125
        // slice z in [0.5,1): both: cross = hv2d{(0,0),(0.5,0.5)} = 1.0*... =
        //   (1-0)*(1-0)=1 => 1 * 0.5 = 0.5; total 0.625
        let hv = hypervolume(
            &[vec![0.0, 0.0, 0.5], vec![0.5, 0.5, 0.0]],
            &[1.0, 1.0, 1.0],
        );
        assert!((hv - 0.625).abs() < 1e-12, "{hv}");
    }

    #[test]
    fn scaled_staircase_applies_axis_scales() {
        // (2e-12 F, 5e-4 W) with scale (1e12, 1e4) -> (2 pF, 5 0.1mW) -> 10
        let v = scaled_staircase_volume(&[vec![2e-12, 5e-4]], &[1e12, 1e4]);
        assert!((v - 10.0).abs() < 1e-9);
    }

    #[test]
    fn dominated_by_front_detects() {
        let front = vec![vec![1.0, 1.0]];
        assert!(is_dominated_by_front(&[2.0, 2.0], &front));
        assert!(!is_dominated_by_front(&[0.5, 2.0], &front));
    }
}
