//! Shared evaluation-engine wiring for optimizer config builders.
//!
//! Every loop in the workspace — NSGA-II here, SACGA/MESACGA/local/island
//! and the steady-state variant in the `sacga` crate — exposes the same
//! engine knobs on its config builder: evaluator strategy, memoization
//! capacity and grid, fault policy, fault injection, a pooled
//! [`SharedCache`] and an opt-in [`SurrogateScreen`]. [`EngineSetup`]
//! owns that bundle once, so each builder stores one field and delegates
//! its knob methods instead of duplicating the plumbing, and
//! [`EngineSetup::build_engine`] performs the (previously copy-pasted)
//! engine construction: config, pooled cache, the problem's cache
//! canonicalizer, and the screen — in that order, identically for fresh
//! and resumed runs.

use engine::{
    CacheCanonicalizer, CellSeries, EngineConfig, EngineMetrics, EvaluatorKind, ExecutionEngine,
    FaultPlan, FaultPolicy, SharedCache, SurrogateScreen,
};

use crate::evaluation::Evaluation;

/// The engine knobs shared by every optimizer's config builder, plus the
/// construction recipe that turns them into an [`ExecutionEngine`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineSetup {
    engine: EngineConfig,
    shared_cache: Option<SharedCache<Evaluation>>,
    surrogate_screen: Option<SurrogateScreen<Evaluation>>,
    metrics: Option<EngineMetrics>,
    cell_series: Option<CellSeries>,
}

impl EngineSetup {
    /// Starts from the defaults: serial evaluator, no cache, aborting
    /// fault policy, no injection, no shared cache, no screen.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the candidate-evaluation strategy (default: serial).
    pub fn evaluator(mut self, evaluator: impl Into<EvaluatorKind>) -> Self {
        self.engine = self.engine.evaluator(evaluator);
        self
    }

    /// Enables evaluation memoization with room for `capacity` entries
    /// (default: disabled).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.engine = self.engine.cache_capacity(capacity);
        self
    }

    /// Sets the memoization quantization grid (must be positive).
    pub fn cache_grid(mut self, grid: f64) -> Self {
        self.engine = self.engine.cache_grid(grid);
        self
    }

    /// Sets the fault-handling policy for candidate evaluation: retry
    /// budget, non-finite quarantine, and exhaustion behavior.
    pub fn fault_policy(mut self, fault: FaultPolicy) -> Self {
        self.engine = self.engine.fault_policy(fault);
        self
    }

    /// Enables deterministic fault injection with the given plan (a
    /// testing/chaos harness — injected faults are reproducible per
    /// candidate).
    pub fn inject_faults(mut self, plan: FaultPlan) -> Self {
        self.engine = self.engine.inject_faults(plan);
        self
    }

    /// Routes memoization through a [`SharedCache`] pooled across
    /// concurrent runs (a campaign) instead of a private per-run cache.
    /// Cached evaluations are pure functions of the genes, so sharing
    /// never changes a run's results — only how many model evaluations
    /// it performs.
    pub fn shared_cache(mut self, cache: SharedCache<Evaluation>) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    /// Attaches an opt-in [`SurrogateScreen`]: candidates the screen
    /// answers skip the full model (counted in
    /// [`engine::EngineStats::screened`], never cached). Screening
    /// changes which candidates reach the model, so runs with an active
    /// screen are *not* byte-identical to unscreened runs — leave this
    /// unset (or use a never-firing screen) to keep pinned artifacts
    /// reproducible.
    pub fn surrogate_screen(mut self, screen: SurrogateScreen<Evaluation>) -> Self {
        self.surrogate_screen = Some(screen);
        self
    }

    /// Attaches a live [`EngineMetrics`] bundle (handles into a
    /// [`engine::MetricsRegistry`]): the engine mirrors its counters into
    /// the registry as evaluation happens and records latency/batch-size
    /// histograms. Observation only — an instrumented run is
    /// bit-identical to a bare one.
    pub fn metrics(mut self, metrics: EngineMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Attaches a [`CellSeries`]: optimizers with a structured
    /// population (the cellular loop) mirror per-cell stage timings and
    /// counters into the series' registry under `cell="<index>"`
    /// labels. Loops without cells ignore it. Observation only — an
    /// instrumented run is bit-identical to a bare one.
    pub fn cell_series(mut self, series: CellSeries) -> Self {
        self.cell_series = Some(series);
        self
    }

    /// The attached per-cell metric series, if any.
    pub fn cell_series_ref(&self) -> Option<&CellSeries> {
        self.cell_series.as_ref()
    }

    /// The raw engine configuration.
    pub fn engine(&self) -> &EngineConfig {
        &self.engine
    }

    /// Builds the execution engine for a run: engine config, pooled
    /// cache, the problem's cache canonicalizer, and the optional
    /// surrogate screen. Fresh and resumed runs call this with the same
    /// arguments so the evaluation path is wired identically.
    pub fn build_engine(
        &self,
        canonicalizer: Option<CacheCanonicalizer>,
    ) -> ExecutionEngine<Evaluation> {
        let mut exec = ExecutionEngine::new(self.engine.clone());
        if let Some(shared) = &self.shared_cache {
            exec.attach_shared_cache(shared.clone());
        }
        if let Some(f) = canonicalizer {
            exec.set_cache_canonicalizer(f);
        }
        if let Some(screen) = &self.surrogate_screen {
            exec.attach_screen(screen.clone());
        }
        if let Some(metrics) = &self.metrics {
            exec.attach_metrics(metrics.clone());
        }
        exec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knobs_accumulate_into_the_engine_config() {
        let setup = EngineSetup::new()
            .evaluator(EvaluatorKind::ParallelWith(3))
            .cache_capacity(64)
            .cache_grid(1e-6);
        assert_eq!(setup.engine().evaluator, EvaluatorKind::ParallelWith(3));
        let mut exec = setup.build_engine(None);
        let batch = vec![vec![1.0], vec![1.0]];
        let eval = |g: &[f64]| Evaluation::new(vec![g[0]], vec![]);
        let out = exec.evaluate_batch(&batch, &eval);
        assert_eq!(out[0].objectives(), &[1.0]);
        assert_eq!(exec.stats().cache_hits, 1, "cache capacity must be wired");
    }

    #[test]
    fn shared_cache_is_attached() {
        let shared: SharedCache<Evaluation> =
            SharedCache::new(engine::CacheConfig::with_capacity(32));
        let setup = EngineSetup::new().shared_cache(shared.clone());
        let mut a = setup.build_engine(None);
        let mut b = setup.build_engine(None);
        let eval = |g: &[f64]| Evaluation::new(vec![g[0]], vec![]);
        a.evaluate_batch(&[vec![2.0]], &eval);
        b.evaluate_batch(&[vec![2.0]], &eval);
        assert_eq!(b.stats().cache_hits, 1, "second engine must reuse the pool");
    }
}
