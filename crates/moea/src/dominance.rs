//! Pareto dominance and Deb's constrained dominance.
//!
//! All objectives are minimized. `a` *dominates* `b` when `a` is no worse in
//! every objective and strictly better in at least one. The constrained
//! variant (Deb 2000, as used by NSGA-II) additionally prefers feasible
//! solutions to infeasible ones and, among infeasible solutions, the one with
//! smaller total violation.

use crate::individual::Individual;
use std::cmp::Ordering;

/// Three-way outcome of a dominance comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dominance {
    /// The first argument dominates the second.
    First,
    /// The second argument dominates the first.
    Second,
    /// Neither dominates (incomparable or equal).
    Neither,
}

impl Dominance {
    /// Flips the roles of the two arguments.
    pub fn flip(self) -> Dominance {
        match self {
            Dominance::First => Dominance::Second,
            Dominance::Second => Dominance::First,
            Dominance::Neither => Dominance::Neither,
        }
    }
}

/// Pure Pareto dominance on raw objective vectors (minimization).
///
/// # Panics
///
/// Panics in debug builds if the vectors differ in length.
///
/// # Examples
///
/// ```
/// use moea::dominance::{dominates, Dominance};
///
/// assert_eq!(dominates(&[1.0, 1.0], &[2.0, 2.0]), Dominance::First);
/// assert_eq!(dominates(&[1.0, 3.0], &[2.0, 2.0]), Dominance::Neither);
/// ```
pub fn dominates(a: &[f64], b: &[f64]) -> Dominance {
    debug_assert_eq!(a.len(), b.len(), "objective dimension mismatch");
    // A vector containing NaN represents a numerically broken design: it
    // never dominates, and is dominated by any clean vector. Two broken
    // vectors are incomparable.
    let a_nan = a.iter().any(|v| v.is_nan());
    let b_nan = b.iter().any(|v| v.is_nan());
    match (a_nan, b_nan) {
        (true, true) => return Dominance::Neither,
        (true, false) => return Dominance::Second,
        (false, true) => return Dominance::First,
        (false, false) => {}
    }
    let mut a_better = false;
    let mut b_better = false;
    for (&x, &y) in a.iter().zip(b) {
        if x < y {
            a_better = true;
        } else if y < x {
            b_better = true;
        }
        if a_better && b_better {
            return Dominance::Neither;
        }
    }
    match (a_better, b_better) {
        (true, false) => Dominance::First,
        (false, true) => Dominance::Second,
        _ => Dominance::Neither,
    }
}

/// Deb's constrained dominance between two individuals.
///
/// Rules, in order:
/// 1. feasible dominates infeasible;
/// 2. between two infeasible individuals, the smaller total constraint
///    violation dominates;
/// 3. between two feasible individuals, plain Pareto dominance applies.
pub fn constrained_dominates(a: &Individual, b: &Individual) -> Dominance {
    match (a.is_feasible(), b.is_feasible()) {
        (true, false) => Dominance::First,
        (false, true) => Dominance::Second,
        (false, false) => {
            let va = a.total_violation();
            let vb = b.total_violation();
            match va.partial_cmp(&vb) {
                Some(Ordering::Less) => Dominance::First,
                Some(Ordering::Greater) => Dominance::Second,
                _ => Dominance::Neither,
            }
        }
        (true, true) => dominates(a.objectives(), b.objectives()),
    }
}

/// Crowded-comparison operator of NSGA-II: lower rank wins; within a rank,
/// larger crowding distance wins.
///
/// Returns [`Ordering::Less`] when `a` is *preferred* over `b`, so sorting
/// ascending with this comparator puts the best individual first.
pub fn crowded_compare(a: &Individual, b: &Individual) -> Ordering {
    match a.rank.cmp(&b.rank) {
        Ordering::Equal => b
            .crowding
            .partial_cmp(&a.crowding)
            .unwrap_or(Ordering::Equal),
        other => other,
    }
}

/// Extracts the non-dominated subset of a set of objective vectors
/// (indices into `points`), using pure Pareto dominance.
///
/// `O(n^2)` pairwise filter; fine for the front sizes handled here.
pub fn non_dominated_indices(points: &[Vec<f64>]) -> Vec<usize> {
    let mut keep = Vec::new();
    'outer: for (i, p) in points.iter().enumerate() {
        for (j, q) in points.iter().enumerate() {
            if i != j && dominates(q, p) == Dominance::First {
                continue 'outer;
            }
        }
        keep.push(i);
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluation::Evaluation;

    fn ind(objs: Vec<f64>, violations: Vec<f64>) -> Individual {
        Individual::new(vec![0.0], Evaluation::new(objs, violations))
    }

    #[test]
    fn equal_vectors_do_not_dominate() {
        assert_eq!(dominates(&[1.0, 2.0], &[1.0, 2.0]), Dominance::Neither);
    }

    #[test]
    fn strict_improvement_in_one_objective_suffices() {
        assert_eq!(dominates(&[1.0, 2.0], &[1.0, 3.0]), Dominance::First);
        assert_eq!(dominates(&[1.0, 3.0], &[1.0, 2.0]), Dominance::Second);
    }

    #[test]
    fn dominance_is_antisymmetric() {
        let a = [0.5, 0.5];
        let b = [1.0, 1.0];
        assert_eq!(dominates(&a, &b), dominates(&b, &a).flip());
    }

    #[test]
    fn nan_never_dominates() {
        // A NaN-containing vector loses to any clean vector and never wins.
        assert_eq!(dominates(&[f64::NAN, 1.0], &[1.0, 2.0]), Dominance::Second);
        assert_eq!(dominates(&[1.0, 2.0], &[f64::NAN, 1.0]), Dominance::First);
        assert_eq!(
            dominates(&[f64::NAN, 1.0], &[f64::NAN, 0.0]),
            Dominance::Neither
        );
    }

    #[test]
    fn feasible_beats_infeasible_regardless_of_objectives() {
        let good_objs_infeasible = ind(vec![0.0, 0.0], vec![0.1]);
        let bad_objs_feasible = ind(vec![10.0, 10.0], vec![0.0]);
        assert_eq!(
            constrained_dominates(&bad_objs_feasible, &good_objs_infeasible),
            Dominance::First
        );
    }

    #[test]
    fn smaller_violation_wins_among_infeasible() {
        let a = ind(vec![5.0], vec![0.1]);
        let b = ind(vec![1.0], vec![0.2]);
        assert_eq!(constrained_dominates(&a, &b), Dominance::First);
        assert_eq!(constrained_dominates(&b, &a), Dominance::Second);
    }

    #[test]
    fn equal_violation_is_neither() {
        let a = ind(vec![5.0], vec![0.1]);
        let b = ind(vec![1.0], vec![0.1]);
        assert_eq!(constrained_dominates(&a, &b), Dominance::Neither);
    }

    #[test]
    fn feasible_pair_uses_pareto() {
        let a = ind(vec![1.0, 2.0], vec![0.0]);
        let b = ind(vec![2.0, 3.0], vec![0.0]);
        assert_eq!(constrained_dominates(&a, &b), Dominance::First);
    }

    #[test]
    fn crowded_compare_prefers_lower_rank_then_larger_crowding() {
        let mut a = ind(vec![1.0], vec![0.0]);
        let mut b = ind(vec![2.0], vec![0.0]);
        a.rank = 0;
        b.rank = 1;
        assert_eq!(crowded_compare(&a, &b), Ordering::Less);
        b.rank = 0;
        a.crowding = 1.0;
        b.crowding = 2.0;
        assert_eq!(crowded_compare(&a, &b), Ordering::Greater);
    }

    #[test]
    fn non_dominated_indices_filters_dominated_points() {
        let pts = vec![
            vec![1.0, 4.0],
            vec![2.0, 3.0],
            vec![3.0, 3.5], // dominated by [2,3]
            vec![4.0, 1.0],
        ];
        assert_eq!(non_dominated_indices(&pts), vec![0, 1, 3]);
    }

    #[test]
    fn non_dominated_indices_keeps_duplicates() {
        let pts = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        assert_eq!(non_dominated_indices(&pts), vec![0, 1]);
    }
}
