//! Fast non-dominated sorting and crowding-distance assignment
//! (Deb et al., NSGA-II).

use crate::dominance::{constrained_dominates, Dominance};
use crate::individual::Individual;

/// Result of a non-dominated sort: fronts of indices into the sorted slice,
/// front 0 being the non-dominated set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fronts {
    fronts: Vec<Vec<usize>>,
}

impl Fronts {
    /// The fronts, best (rank 0) first.
    pub fn as_slice(&self) -> &[Vec<usize>] {
        &self.fronts
    }

    /// Number of fronts.
    pub fn len(&self) -> usize {
        self.fronts.len()
    }

    /// `true` when the sorted set was empty.
    pub fn is_empty(&self) -> bool {
        self.fronts.is_empty()
    }

    /// Indices of the rank-0 (non-dominated) front.
    ///
    /// # Panics
    ///
    /// Panics if the sorted set was empty.
    pub fn best(&self) -> &[usize] {
        &self.fronts[0]
    }

    /// Iterates over fronts.
    pub fn iter(&self) -> std::slice::Iter<'_, Vec<usize>> {
        self.fronts.iter()
    }

    /// Consumes into the underlying `Vec<Vec<usize>>`.
    pub fn into_vec(self) -> Vec<Vec<usize>> {
        self.fronts
    }
}

/// Fast non-dominated sort under **constrained dominance**, writing `rank`
/// into each individual and returning the fronts.
///
/// Complexity `O(M·N²)` like the original algorithm. Individuals' `crowding`
/// fields are left untouched; call [`assign_crowding`] per front afterwards
/// (or use [`rank_and_crowd`]).
pub fn fast_non_dominated_sort(pop: &mut [Individual]) -> Fronts {
    let n = pop.len();
    if n == 0 {
        return Fronts { fronts: Vec::new() };
    }
    // dominated_by[i]: how many individuals dominate i
    // dominates_list[i]: indices that i dominates
    let mut dominated_by = vec![0usize; n];
    let mut dominates_list: Vec<Vec<usize>> = vec![Vec::new(); n];

    for i in 0..n {
        for j in (i + 1)..n {
            match constrained_dominates(&pop[i], &pop[j]) {
                Dominance::First => {
                    dominates_list[i].push(j);
                    dominated_by[j] += 1;
                }
                Dominance::Second => {
                    dominates_list[j].push(i);
                    dominated_by[i] += 1;
                }
                Dominance::Neither => {}
            }
        }
    }

    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| dominated_by[i] == 0).collect();
    let mut rank = 0usize;
    while !current.is_empty() {
        for &i in &current {
            pop[i].rank = rank;
        }
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dominates_list[i] {
                dominated_by[j] -= 1;
                if dominated_by[j] == 0 {
                    next.push(j);
                }
            }
        }
        fronts.push(std::mem::take(&mut current));
        current = next;
        rank += 1;
    }
    Fronts { fronts }
}

/// Assigns NSGA-II crowding distances to the individuals referenced by
/// `front` (indices into `pop`).
///
/// Boundary individuals in each objective get `f64::INFINITY`. Objectives
/// with zero range contribute nothing. Fronts of size <= 2 get all-infinite
/// distances.
pub fn assign_crowding(pop: &mut [Individual], front: &[usize]) {
    let m = front.len();
    if m == 0 {
        return;
    }
    for &i in front {
        pop[i].crowding = 0.0;
    }
    if m <= 2 {
        for &i in front {
            pop[i].crowding = f64::INFINITY;
        }
        return;
    }
    let num_objs = pop[front[0]].objectives().len();
    let mut order: Vec<usize> = front.to_vec();
    for k in 0..num_objs {
        order.sort_by(|&a, &b| {
            pop[a]
                .objective(k)
                .partial_cmp(&pop[b].objective(k))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let lo = pop[order[0]].objective(k);
        let hi = pop[order[m - 1]].objective(k);
        pop[order[0]].crowding = f64::INFINITY;
        pop[order[m - 1]].crowding = f64::INFINITY;
        let range = hi - lo;
        if range <= 0.0 || !range.is_finite() {
            continue;
        }
        for w in 1..(m - 1) {
            let prev = pop[order[w - 1]].objective(k);
            let next = pop[order[w + 1]].objective(k);
            let idx = order[w];
            if pop[idx].crowding.is_finite() {
                pop[idx].crowding += (next - prev) / range;
            }
        }
    }
}

/// Convenience: full rank + crowding assignment over a population slice.
///
/// Returns the fronts. Equivalent to [`fast_non_dominated_sort`] followed by
/// [`assign_crowding`] on every front.
pub fn rank_and_crowd(pop: &mut [Individual]) -> Fronts {
    let fronts = fast_non_dominated_sort(pop);
    for front in fronts.iter() {
        assign_crowding(pop, front);
    }
    fronts
}

/// Elitist environmental selection: given a combined parent+offspring
/// population, keep the best `target` individuals by (rank, crowding).
///
/// This is the survivor-selection step of NSGA-II: whole fronts are accepted
/// until one no longer fits; that boundary front is truncated by descending
/// crowding distance. Returns the survivors as a new vector (rank/crowding
/// freshly assigned).
pub fn environmental_selection(mut pop: Vec<Individual>, target: usize) -> Vec<Individual> {
    if pop.len() <= target {
        rank_and_crowd(&mut pop);
        return pop;
    }
    let fronts = rank_and_crowd(&mut pop);
    let mut chosen: Vec<usize> = Vec::with_capacity(target);
    for front in fronts.iter() {
        if chosen.len() + front.len() <= target {
            chosen.extend_from_slice(front);
        } else {
            let mut rest: Vec<usize> = front.clone();
            rest.sort_by(|&a, &b| {
                pop[b]
                    .crowding
                    .partial_cmp(&pop[a].crowding)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            rest.truncate(target - chosen.len());
            chosen.extend(rest);
            break;
        }
    }
    // Extract in index order to keep determinism independent of front layout.
    let mut take = vec![false; pop.len()];
    for &i in &chosen {
        take[i] = true;
    }
    pop.into_iter()
        .zip(take)
        .filter_map(|(ind, keep)| keep.then_some(ind))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluation::Evaluation;

    fn ind(objs: Vec<f64>) -> Individual {
        Individual::new(vec![0.0], Evaluation::unconstrained(objs))
    }

    fn infeasible(objs: Vec<f64>, violation: f64) -> Individual {
        Individual::new(vec![0.0], Evaluation::new(objs, vec![violation]))
    }

    #[test]
    fn sort_of_empty_population() {
        let mut pop: Vec<Individual> = Vec::new();
        let fronts = fast_non_dominated_sort(&mut pop);
        assert!(fronts.is_empty());
    }

    #[test]
    fn two_layer_sort() {
        // Layer 0: (1,4),(2,3),(4,1) ; layer 1: (3,4),(4,3)
        let mut pop = vec![
            ind(vec![1.0, 4.0]),
            ind(vec![3.0, 4.0]),
            ind(vec![2.0, 3.0]),
            ind(vec![4.0, 3.0]),
            ind(vec![4.0, 1.0]),
        ];
        let fronts = fast_non_dominated_sort(&mut pop);
        assert_eq!(fronts.len(), 2);
        assert_eq!(fronts.best(), &[0, 2, 4]);
        assert_eq!(pop[1].rank, 1);
        assert_eq!(pop[3].rank, 1);
    }

    #[test]
    fn infeasible_individuals_rank_behind_feasible() {
        let mut pop = vec![
            infeasible(vec![0.0, 0.0], 0.5),
            ind(vec![9.0, 9.0]),
            infeasible(vec![0.0, 0.0], 0.1),
        ];
        let fronts = fast_non_dominated_sort(&mut pop);
        assert_eq!(fronts.len(), 3);
        assert_eq!(pop[1].rank, 0);
        assert_eq!(pop[2].rank, 1); // smaller violation first among infeasible
        assert_eq!(pop[0].rank, 2);
    }

    #[test]
    fn crowding_boundaries_are_infinite() {
        let mut pop = vec![
            ind(vec![1.0, 4.0]),
            ind(vec![2.0, 3.0]),
            ind(vec![3.0, 2.0]),
            ind(vec![4.0, 1.0]),
        ];
        let front: Vec<usize> = (0..4).collect();
        assign_crowding(&mut pop, &front);
        assert!(pop[0].crowding.is_infinite());
        assert!(pop[3].crowding.is_infinite());
        assert!(pop[1].crowding.is_finite());
        assert!(pop[2].crowding.is_finite());
        // interior, evenly spaced: each gets 2/3 + 2/3 = 4/3
        assert!((pop[1].crowding - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn crowding_small_front_all_infinite() {
        let mut pop = vec![ind(vec![1.0, 2.0]), ind(vec![2.0, 1.0])];
        assign_crowding(&mut pop, &[0, 1]);
        assert!(pop[0].crowding.is_infinite());
        assert!(pop[1].crowding.is_infinite());
    }

    #[test]
    fn crowding_degenerate_objective_range() {
        let mut pop = vec![
            ind(vec![1.0, 1.0]),
            ind(vec![1.0, 1.0]),
            ind(vec![1.0, 1.0]),
        ];
        assign_crowding(&mut pop, &[0, 1, 2]);
        // All identical: boundaries infinite, middle zero (no contribution).
        let finite: Vec<f64> = pop
            .iter()
            .map(|p| p.crowding)
            .filter(|c| c.is_finite())
            .collect();
        for c in finite {
            assert_eq!(c, 0.0);
        }
    }

    #[test]
    fn environmental_selection_truncates_boundary_front() {
        // 4 on front 0, 2 on front 1; target 5 keeps all of front 0 and one
        // of front 1.
        let pop = vec![
            ind(vec![1.0, 4.0]),
            ind(vec![2.0, 3.0]),
            ind(vec![3.0, 2.0]),
            ind(vec![4.0, 1.0]),
            ind(vec![5.0, 5.0]),
            ind(vec![6.0, 6.0]),
        ];
        let survivors = environmental_selection(pop, 5);
        assert_eq!(survivors.len(), 5);
        let rank1: Vec<&Individual> = survivors.iter().filter(|s| s.rank == 1).collect();
        assert_eq!(rank1.len(), 1);
        // the rank-1 survivor must be (5,5), which dominates (6,6)... both
        // are rank 1 (5,5 dominates 6,6 so actually (6,6) is rank 2).
        assert_eq!(rank1[0].objectives(), &[5.0, 5.0]);
    }

    #[test]
    fn environmental_selection_noop_when_small() {
        let pop = vec![ind(vec![1.0, 2.0]), ind(vec![2.0, 1.0])];
        let survivors = environmental_selection(pop, 10);
        assert_eq!(survivors.len(), 2);
        assert_eq!(survivors[0].rank, 0);
    }

    #[test]
    fn ranks_are_contiguous_from_zero() {
        let mut pop: Vec<Individual> = (0..20)
            .map(|i| {
                let x = f64::from(i);
                ind(vec![x % 5.0, (x / 5.0).floor() + (x % 5.0) * 0.1])
            })
            .collect();
        let fronts = fast_non_dominated_sort(&mut pop);
        let max_rank = pop.iter().map(|p| p.rank).max().unwrap();
        assert_eq!(max_rank + 1, fronts.len());
        let total: usize = fronts.iter().map(Vec::len).sum();
        assert_eq!(total, pop.len());
    }
}
