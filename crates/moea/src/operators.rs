//! Real-coded variation operators: uniform initialization, simulated binary
//! crossover (SBX) and polynomial mutation — the classic NSGA-II suite
//! (Deb & Agrawal 1995).

use crate::problem::Bounds;
use rand::Rng;

/// Simulated binary crossover.
///
/// `eta` (the distribution index, typically 10–20) controls how close
/// children stay to their parents: larger `eta` produces nearer children.
/// `probability` is the per-pair crossover probability; within a crossing
/// pair each variable crosses with probability 0.5 (the standard
/// "variable-wise" SBX).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sbx {
    /// Distribution index (η_c > 0).
    pub eta: f64,
    /// Per-pair crossover probability in `[0, 1]`.
    pub probability: f64,
}

impl Sbx {
    /// Creates an SBX operator.
    ///
    /// # Panics
    ///
    /// Panics if `eta <= 0` or `probability` is outside `[0, 1]`.
    pub fn new(eta: f64, probability: f64) -> Self {
        assert!(eta > 0.0, "sbx eta must be positive");
        assert!(
            (0.0..=1.0).contains(&probability),
            "sbx probability must lie in [0, 1]"
        );
        Sbx { eta, probability }
    }

    /// Crosses two parents, returning two children clamped into `bounds`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when parent/bounds dimensions disagree.
    pub fn cross<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        a: &[f64],
        b: &[f64],
        bounds: &Bounds,
    ) -> (Vec<f64>, Vec<f64>) {
        debug_assert_eq!(a.len(), b.len());
        debug_assert_eq!(a.len(), bounds.len());
        let mut c1 = a.to_vec();
        let mut c2 = b.to_vec();
        if rng.gen::<f64>() > self.probability {
            return (c1, c2);
        }
        for i in 0..a.len() {
            if rng.gen::<f64>() > 0.5 {
                continue;
            }
            let (x1, x2) = (a[i].min(b[i]), a[i].max(b[i]));
            if (x2 - x1).abs() < 1e-14 {
                continue;
            }
            let (lo, hi) = (bounds.lower()[i], bounds.upper()[i]);
            let u: f64 = rng.gen();

            // Bounded SBX (Deb): contract the spread factor so children stay
            // in [lo, hi].
            let beta_l = 1.0 + 2.0 * (x1 - lo) / (x2 - x1);
            let beta_u = 1.0 + 2.0 * (hi - x2) / (x2 - x1);
            let child = |beta_bound: f64, u: f64, sign: f64, rng_u: f64| -> f64 {
                let alpha = 2.0 - beta_bound.powf(-(self.eta + 1.0));
                let betaq = if rng_u <= 1.0 / alpha {
                    (u * alpha).powf(1.0 / (self.eta + 1.0))
                } else {
                    (1.0 / (2.0 - u * alpha)).powf(1.0 / (self.eta + 1.0))
                };
                0.5 * ((x1 + x2) + sign * betaq * (x2 - x1))
            };
            let y1 = child(beta_l, u, -1.0, u);
            let y2 = child(beta_u, u, 1.0, u);
            let (y1, y2) = (y1.clamp(lo, hi), y2.clamp(lo, hi));
            // Randomly swap which child receives which value, as in the
            // reference implementation.
            if rng.gen::<f64>() < 0.5 {
                c1[i] = y2;
                c2[i] = y1;
            } else {
                c1[i] = y1;
                c2[i] = y2;
            }
        }
        (c1, c2)
    }
}

/// Polynomial mutation (Deb).
///
/// `eta` (typically 20) controls perturbation size; `probability` is the
/// per-variable mutation probability, conventionally `1 / n_vars`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolynomialMutation {
    /// Distribution index (η_m > 0).
    pub eta: f64,
    /// Per-variable mutation probability in `[0, 1]`.
    pub probability: f64,
}

impl PolynomialMutation {
    /// Creates a polynomial-mutation operator.
    ///
    /// # Panics
    ///
    /// Panics if `eta <= 0` or `probability` is outside `[0, 1]`.
    pub fn new(eta: f64, probability: f64) -> Self {
        assert!(eta > 0.0, "mutation eta must be positive");
        assert!(
            (0.0..=1.0).contains(&probability),
            "mutation probability must lie in [0, 1]"
        );
        PolynomialMutation { eta, probability }
    }

    /// Mutates `x` in place, keeping every variable inside `bounds`.
    pub fn mutate<R: Rng + ?Sized>(&self, rng: &mut R, x: &mut [f64], bounds: &Bounds) {
        debug_assert_eq!(x.len(), bounds.len());
        for (i, xi) in x.iter_mut().enumerate() {
            if rng.gen::<f64>() > self.probability {
                continue;
            }
            let (lo, hi) = (bounds.lower()[i], bounds.upper()[i]);
            let range = hi - lo;
            if range <= 0.0 {
                continue;
            }
            let y = *xi;
            let delta1 = (y - lo) / range;
            let delta2 = (hi - y) / range;
            let u: f64 = rng.gen();
            let mut_pow = 1.0 / (self.eta + 1.0);
            let deltaq = if u < 0.5 {
                let xy = 1.0 - delta1;
                let val = 2.0 * u + (1.0 - 2.0 * u) * xy.powf(self.eta + 1.0);
                val.powf(mut_pow) - 1.0
            } else {
                let xy = 1.0 - delta2;
                let val = 2.0 * (1.0 - u) + 2.0 * (u - 0.5) * xy.powf(self.eta + 1.0);
                1.0 - val.powf(mut_pow)
            };
            *xi = (y + deltaq * range).clamp(lo, hi);
        }
    }
}

/// Draws a uniformly random decision vector inside `bounds`.
pub fn random_vector<R: Rng + ?Sized>(rng: &mut R, bounds: &Bounds) -> Vec<f64> {
    bounds
        .lower()
        .iter()
        .zip(bounds.upper())
        .map(
            |(&lo, &hi)| {
                if hi > lo {
                    rng.gen_range(lo..=hi)
                } else {
                    lo
                }
            },
        )
        .collect()
}

/// Bundled variation configuration shared by all GA variants in this
/// workspace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Variation {
    /// Crossover operator.
    pub sbx: Sbx,
    /// Mutation operator.
    pub mutation: PolynomialMutation,
}

impl Variation {
    /// The conventional NSGA-II settings for an `n_vars`-dimensional
    /// problem: SBX(η=15, p=0.9), polynomial mutation(η=20, p=1/n_vars).
    pub fn standard(n_vars: usize) -> Self {
        Variation {
            sbx: Sbx::new(15.0, 0.9),
            mutation: PolynomialMutation::new(20.0, 1.0 / n_vars.max(1) as f64),
        }
    }

    /// Produces two mutated children from two parents.
    pub fn offspring<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        a: &[f64],
        b: &[f64],
        bounds: &Bounds,
    ) -> (Vec<f64>, Vec<f64>) {
        let (mut c1, mut c2) = self.sbx.cross(rng, a, b, bounds);
        self.mutation.mutate(rng, &mut c1, bounds);
        self.mutation.mutate(rng, &mut c2, bounds);
        (c1, c2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bounds(n: usize) -> Bounds {
        Bounds::uniform(n, -1.0, 3.0).unwrap()
    }

    #[test]
    #[should_panic(expected = "eta must be positive")]
    fn sbx_rejects_nonpositive_eta() {
        let _ = Sbx::new(0.0, 0.9);
    }

    #[test]
    #[should_panic(expected = "probability must lie")]
    fn mutation_rejects_bad_probability() {
        let _ = PolynomialMutation::new(20.0, 1.5);
    }

    #[test]
    fn sbx_children_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let b = bounds(5);
        let sbx = Sbx::new(15.0, 1.0);
        for _ in 0..200 {
            let p1 = random_vector(&mut rng, &b);
            let p2 = random_vector(&mut rng, &b);
            let (c1, c2) = sbx.cross(&mut rng, &p1, &p2, &b);
            assert!(b.contains(&c1), "c1 out of bounds: {c1:?}");
            assert!(b.contains(&c2), "c2 out of bounds: {c2:?}");
        }
    }

    #[test]
    fn sbx_zero_probability_copies_parents() {
        let mut rng = StdRng::seed_from_u64(7);
        let b = bounds(3);
        let sbx = Sbx::new(15.0, 0.0);
        let p1 = vec![0.0, 1.0, 2.0];
        let p2 = vec![2.0, 1.0, 0.0];
        let (c1, c2) = sbx.cross(&mut rng, &p1, &p2, &b);
        assert_eq!(c1, p1);
        assert_eq!(c2, p2);
    }

    #[test]
    fn sbx_preserves_midpoint_structure() {
        // SBX children are symmetric around the parent midpoint before
        // clamping; verify mean of children ~ mean of parents across trials
        // on an interior pair far from the bounds.
        let mut rng = StdRng::seed_from_u64(11);
        let b = Bounds::uniform(1, -100.0, 100.0).unwrap();
        let sbx = Sbx::new(15.0, 1.0);
        let (p1, p2) = (vec![0.4], vec![0.6]);
        let mut sum = 0.0;
        let trials = 4000;
        let mut crossed = 0;
        for _ in 0..trials {
            let (c1, c2) = sbx.cross(&mut rng, &p1, &p2, &b);
            if c1 != p1 {
                crossed += 1;
            }
            sum += c1[0] + c2[0];
        }
        assert!(crossed > trials / 4, "crossover rarely happened");
        let mean = sum / (2.0 * trials as f64);
        assert!((mean - 0.5).abs() < 0.01, "children mean {mean} drifted");
    }

    #[test]
    fn mutation_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let b = bounds(8);
        let op = PolynomialMutation::new(20.0, 1.0);
        for _ in 0..200 {
            let mut x = random_vector(&mut rng, &b);
            op.mutate(&mut rng, &mut x, &b);
            assert!(b.contains(&x));
        }
    }

    #[test]
    fn mutation_probability_zero_is_identity() {
        let mut rng = StdRng::seed_from_u64(3);
        let b = bounds(4);
        let op = PolynomialMutation::new(20.0, 0.0);
        let mut x = vec![0.0, 1.0, 2.0, 3.0];
        let orig = x.clone();
        op.mutate(&mut rng, &mut x, &b);
        assert_eq!(x, orig);
    }

    #[test]
    fn mutation_actually_perturbs() {
        let mut rng = StdRng::seed_from_u64(3);
        let b = bounds(4);
        let op = PolynomialMutation::new(20.0, 1.0);
        let mut x = vec![0.0, 1.0, 2.0, 3.0];
        let orig = x.clone();
        op.mutate(&mut rng, &mut x, &b);
        assert_ne!(x, orig);
    }

    #[test]
    fn random_vector_in_bounds_and_varied() {
        let mut rng = StdRng::seed_from_u64(99);
        let b = bounds(6);
        let a = random_vector(&mut rng, &b);
        let c = random_vector(&mut rng, &b);
        assert!(b.contains(&a));
        assert!(b.contains(&c));
        assert_ne!(a, c);
    }

    #[test]
    fn random_vector_degenerate_interval() {
        let mut rng = StdRng::seed_from_u64(99);
        let b = Bounds::new(vec![2.0], vec![2.0]).unwrap();
        assert_eq!(random_vector(&mut rng, &b), vec![2.0]);
    }

    #[test]
    fn standard_variation_offspring_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let b = bounds(15);
        let v = Variation::standard(15);
        for _ in 0..100 {
            let p1 = random_vector(&mut rng, &b);
            let p2 = random_vector(&mut rng, &b);
            let (c1, c2) = v.offspring(&mut rng, &p1, &p2, &b);
            assert!(b.contains(&c1));
            assert!(b.contains(&c2));
        }
    }
}
