//! NSGA-II — the elitist non-dominated sorting genetic algorithm
//! (Deb, Pratap, Agarwal, Meyarivan, 2002), with Deb's constrained
//! dominance.
//!
//! In the reproduced paper this algorithm is the baseline, referred to as
//! **TPG** — *Traditional Purely Global competition* based GA: every
//! individual competes with every other individual in a single global
//! non-dominated sort each generation.

use crate::error::OptimizeError;
use crate::individual::Individual;
use crate::operators::{random_vector, Variation};
use crate::outcome::{GenerationStats, RunOutcome};
use crate::problem::Problem;
use crate::selection::binary_tournament;
use crate::setup::EngineSetup;
use crate::sorting::{environmental_selection, rank_and_crowd};
use engine::{
    EngineConfig, EvaluatorKind, FaultEvent, FaultPlan, FaultPolicy, SharedCache, Stage,
    StageNanos, StageTimer, SurrogateScreen,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of an NSGA-II run. Build with [`Nsga2Config::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct Nsga2Config {
    population_size: usize,
    generations: usize,
    variation: Option<Variation>,
    exec: EngineSetup,
}

impl Nsga2Config {
    /// Starts a configuration builder.
    pub fn builder() -> Nsga2ConfigBuilder {
        Nsga2ConfigBuilder::default()
    }

    /// Population size.
    pub fn population_size(&self) -> usize {
        self.population_size
    }

    /// Number of generations.
    pub fn generations(&self) -> usize {
        self.generations
    }

    /// Evaluation-engine settings.
    pub fn engine(&self) -> &EngineConfig {
        self.exec.engine()
    }
}

/// Builder for [`Nsga2Config`].
#[derive(Debug, Clone, Default)]
pub struct Nsga2ConfigBuilder {
    population_size: Option<usize>,
    generations: Option<usize>,
    variation: Option<Variation>,
    exec: EngineSetup,
}

impl Nsga2ConfigBuilder {
    /// Sets the population size (must be ≥ 4 and even).
    pub fn population_size(mut self, n: usize) -> Self {
        self.population_size = Some(n);
        self
    }

    /// Sets the generation budget (must be ≥ 1).
    pub fn generations(mut self, n: usize) -> Self {
        self.generations = Some(n);
        self
    }

    /// Overrides the variation operators (default:
    /// [`Variation::standard`] for the problem's dimension).
    pub fn variation(mut self, v: Variation) -> Self {
        self.variation = Some(v);
        self
    }

    /// Replaces the whole engine-knob bundle at once (see
    /// [`EngineSetup`]); the individual knob methods below delegate to
    /// the same bundle.
    pub fn engine_setup(mut self, exec: EngineSetup) -> Self {
        self.exec = exec;
        self
    }

    /// Selects the candidate-evaluation strategy (default: serial).
    pub fn evaluator(mut self, evaluator: impl Into<EvaluatorKind>) -> Self {
        self.exec = self.exec.evaluator(evaluator);
        self
    }

    /// Enables evaluation memoization with room for `capacity` entries
    /// (default: disabled).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.exec = self.exec.cache_capacity(capacity);
        self
    }

    /// Sets the memoization quantization grid (must be positive).
    pub fn cache_grid(mut self, grid: f64) -> Self {
        self.exec = self.exec.cache_grid(grid);
        self
    }

    /// Sets the fault-handling policy (retry budget, non-finite
    /// quarantine, exhausted action) applied to every evaluation.
    pub fn fault_policy(mut self, fault: FaultPolicy) -> Self {
        self.exec = self.exec.fault_policy(fault);
        self
    }

    /// Enables deterministic fault injection (test harness).
    pub fn inject_faults(mut self, plan: FaultPlan) -> Self {
        self.exec = self.exec.inject_faults(plan);
        self
    }

    /// Routes memoization through a [`SharedCache`] pooled across
    /// concurrent runs (a campaign) instead of a private per-run cache.
    /// Cached evaluations are pure functions of the genes, so sharing
    /// never changes a run's results — only how many model evaluations
    /// it performs.
    pub fn shared_cache(mut self, cache: SharedCache<crate::Evaluation>) -> Self {
        self.exec = self.exec.shared_cache(cache);
        self
    }

    /// Attaches an opt-in [`SurrogateScreen`]: candidates the screen
    /// answers skip the full model (counted in
    /// [`engine::EngineStats::screened`], never cached). Screening
    /// changes which candidates reach the model, so screened runs are
    /// *not* byte-identical to unscreened ones.
    pub fn surrogate_screen(mut self, screen: SurrogateScreen<crate::Evaluation>) -> Self {
        self.exec = self.exec.surrogate_screen(screen);
        self
    }

    /// Attaches a live [`engine::EngineMetrics`] bundle: the engine
    /// mirrors its counters and latency/batch-size histograms into the
    /// bundle's registry as evaluation happens. Observation only — an
    /// instrumented run is bit-identical to a bare one.
    pub fn metrics(mut self, metrics: engine::EngineMetrics) -> Self {
        self.exec = self.exec.metrics(metrics);
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError::InvalidConfig`] when the population size is
    /// below 4 or odd, or the generation budget is zero.
    pub fn build(self) -> Result<Nsga2Config, OptimizeError> {
        let population_size = self.population_size.unwrap_or(100);
        let generations = self.generations.unwrap_or(250);
        if population_size < 4 {
            return Err(OptimizeError::invalid_config(
                "population_size",
                format!("must be at least 4, got {population_size}"),
            ));
        }
        if !population_size.is_multiple_of(2) {
            return Err(OptimizeError::invalid_config(
                "population_size",
                format!("must be even, got {population_size}"),
            ));
        }
        if generations == 0 {
            return Err(OptimizeError::invalid_config(
                "generations",
                "must be at least 1",
            ));
        }
        Ok(Nsga2Config {
            population_size,
            generations,
            variation: self.variation,
            exec: self.exec,
        })
    }
}

/// Per-generation trace record passed to [`Nsga2::run_traced`]
/// observers. Borrowed from the run loop between generations; consumers
/// copy out what they need.
#[derive(Debug)]
pub struct GenerationTrace<'a> {
    /// Generation index (0 = initial population).
    pub generation: usize,
    /// Population after environmental selection, globally ranked and
    /// crowded.
    pub population: &'a [Individual],
    /// Fault episodes (retries, quarantines) resolved while evaluating
    /// this generation, in batch order.
    pub faults: Vec<FaultEvent>,
    /// Cumulative objective evaluations performed so far.
    pub evaluations: u64,
    /// Stage timing for this generation; `Some` only under
    /// [`Nsga2::run_traced_timed`] and never for generation 0 (the
    /// initial batch has no variation/selection stages). Wall-clock data
    /// — not deterministic across runs.
    pub timing: Option<TraceTiming>,
}

/// Per-generation profiling attached to a [`GenerationTrace`]: where the
/// generation's wall-clock went and how much evaluation effort it spent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceTiming {
    /// Nanoseconds per pipeline stage.
    pub stages: StageNanos,
    /// Candidates submitted to the engine this generation.
    pub candidates: u64,
    /// Model evaluations actually performed this generation.
    pub evaluations: u64,
    /// Candidates answered from the memoization cache this generation.
    pub cache_hits: u64,
}

/// Extracts the feasible rank-0 subset of a ranked population.
pub fn feasible_front(pop: &[Individual]) -> Vec<Individual> {
    pop.iter()
        .filter(|m| m.rank == 0 && m.is_feasible())
        .cloned()
        .collect()
}

/// The NSGA-II optimizer.
///
/// # Examples
///
/// ```
/// use moea::nsga2::{Nsga2, Nsga2Config};
/// use moea::problems::Zdt1;
///
/// # fn main() -> Result<(), moea::OptimizeError> {
/// let config = Nsga2Config::builder()
///     .population_size(48)
///     .generations(30)
///     .build()?;
/// let result = Nsga2::new(Zdt1::new(10), config).run_seeded(1)?;
/// assert!(result.evaluations > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Nsga2<P: Problem> {
    problem: P,
    config: Nsga2Config,
}

impl<P: Problem> Nsga2<P> {
    /// Creates an optimizer for `problem` with `config`.
    pub fn new(problem: P, config: Nsga2Config) -> Self {
        Nsga2 { problem, config }
    }

    /// Runs the optimizer with a seeded RNG.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError::InvalidProblem`] when the problem declares
    /// zero objectives, an evaluation-shape error on the first
    /// evaluation, or [`OptimizeError::EvaluationFailed`] when a
    /// candidate exhausts the engine's retry budget under an aborting
    /// fault policy.
    pub fn run_seeded(&self, seed: u64) -> Result<RunOutcome, OptimizeError>
    where
        P: Sync,
    {
        self.run_traced(seed, |_| {})
    }

    /// Runs the optimizer, invoking `trace` with a [`GenerationTrace`]
    /// after every environmental selection (including the initial
    /// population) — the hook the `sacga` telemetry layer adapts into
    /// its event stream. Tracing never consumes RNG, so traced and
    /// untraced runs of the same seed are bit-identical.
    ///
    /// # Errors
    ///
    /// Same as [`run_seeded`](Nsga2::run_seeded).
    pub fn run_traced<F>(&self, seed: u64, trace: F) -> Result<RunOutcome, OptimizeError>
    where
        P: Sync,
        F: FnMut(GenerationTrace<'_>),
    {
        let mut rng = StdRng::seed_from_u64(seed);
        self.run_with_rng(&mut rng, trace, false)
    }

    /// Like [`run_traced`](Nsga2::run_traced), but additionally measures
    /// per-stage wall-clock each generation and attaches it as
    /// [`GenerationTrace::timing`]. The timer only reads the clock —
    /// never the RNG — so a timed run remains bit-identical to an
    /// untimed one.
    ///
    /// # Errors
    ///
    /// Same as [`run_seeded`](Nsga2::run_seeded).
    pub fn run_traced_timed<F>(&self, seed: u64, trace: F) -> Result<RunOutcome, OptimizeError>
    where
        P: Sync,
        F: FnMut(GenerationTrace<'_>),
    {
        let mut rng = StdRng::seed_from_u64(seed);
        self.run_with_rng(&mut rng, trace, true)
    }

    fn run_with_rng<R: Rng, F>(
        &self,
        rng: &mut R,
        mut trace: F,
        timed: bool,
    ) -> Result<RunOutcome, OptimizeError>
    where
        P: Sync,
        F: FnMut(GenerationTrace<'_>),
    {
        if self.problem.num_objectives() == 0 {
            return Err(OptimizeError::invalid_problem(
                "problem must declare at least one objective",
            ));
        }
        let bounds = self.problem.bounds().clone();
        let variation = self
            .config
            .variation
            .unwrap_or_else(|| Variation::standard(bounds.len()));
        let n = self.config.population_size;
        let mut exec = self
            .config
            .exec
            .build_engine(self.problem.cache_canonicalizer());
        let eval_fn = |genes: &[f64]| self.problem.evaluate(genes);
        let batch_fn = |chunk: &[Vec<f64>]| self.problem.evaluate_all(chunk);

        // Initialization: draw all genes first (sole RNG consumer), then
        // batch-evaluate through the engine.
        let init_genes: Vec<Vec<f64>> = (0..n).map(|_| random_vector(rng, &bounds)).collect();
        let init_evals = exec.try_evaluate_batch_with(&init_genes, &eval_fn, &batch_fn)?;
        let mut pop: Vec<Individual> = init_genes
            .into_iter()
            .zip(init_evals)
            .map(|(genes, ev)| Individual::new(genes, ev))
            .collect();
        self.problem.check_evaluation(&pop[0].evaluation)?;
        rank_and_crowd(&mut pop);
        let mut history = Vec::with_capacity(self.config.generations + 1);
        history.push(generation_row(0, &pop));
        trace(GenerationTrace {
            generation: 0,
            population: &pop,
            faults: exec.take_fault_events(),
            evaluations: exec.stats().evaluations,
            timing: None,
        });

        let mut timer = StageTimer::new(timed);
        let mut stats_mark = exec.stats().clone();
        for gen in 1..=self.config.generations {
            // Offspring via crowded tournament + SBX + mutation: generate
            // the full gene batch, then evaluate it in one engine call.
            timer.start(Stage::Variation);
            let mut child_genes: Vec<Vec<f64>> = Vec::with_capacity(n);
            while child_genes.len() < n {
                let pa = binary_tournament(rng, &pop);
                let pb = binary_tournament(rng, &pop);
                let (c1, c2) = variation.offspring(rng, &pop[pa].genes, &pop[pb].genes, &bounds);
                child_genes.push(c1);
                if child_genes.len() < n {
                    child_genes.push(c2);
                }
            }
            timer.start(Stage::Evaluation);
            let child_evals = exec.try_evaluate_batch_with(&child_genes, &eval_fn, &batch_fn)?;
            timer.stop();
            let offspring: Vec<Individual> = child_genes
                .into_iter()
                .zip(child_evals)
                .map(|(genes, ev)| Individual::new(genes, ev))
                .collect();
            // µ+λ environmental selection (the non-dominated sort and the
            // crowded truncation are fused, so both count as selection).
            timer.start(Stage::Selection);
            let mut combined = pop;
            combined.extend(offspring);
            pop = environmental_selection(combined, n);
            timer.stop();
            history.push(generation_row(gen, &pop));
            let timing = timed.then(|| {
                let delta = exec.stats().since(&stats_mark);
                stats_mark = exec.stats().clone();
                TraceTiming {
                    stages: timer.take(),
                    candidates: delta.candidates,
                    evaluations: delta.evaluations,
                    cache_hits: delta.cache_hits,
                }
            });
            trace(GenerationTrace {
                generation: gen,
                population: &pop,
                faults: exec.take_fault_events(),
                evaluations: exec.stats().evaluations,
                timing,
            });
        }

        // The reported front is the paper's semantics: one final global
        // competition on the entire (final) population.
        let front = feasible_front(&pop);
        let stats = exec.into_stats();
        Ok(RunOutcome {
            population: pop,
            front,
            evaluations: stats.evaluations as usize,
            generations: self.config.generations,
            gen_t: 0,
            history,
            phase_fronts: Vec::new(),
            migrations: 0,
            stats,
        })
    }
}

/// History row for a purely global (phase-2) generation.
fn generation_row(generation: usize, pop: &[Individual]) -> GenerationStats {
    GenerationStats {
        generation,
        phase: 2,
        temperature: 1.0,
        promoted: 0,
        feasible: pop.iter().filter(|m| m.is_feasible()).count(),
        population: pop.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{Schaffer, Zdt1};

    #[test]
    fn builder_validates() {
        assert!(Nsga2Config::builder().population_size(3).build().is_err());
        assert!(Nsga2Config::builder().population_size(5).build().is_err());
        assert!(Nsga2Config::builder().generations(0).build().is_err());
        assert!(Nsga2Config::builder().build().is_ok());
    }

    #[test]
    fn run_is_deterministic_per_seed() {
        let cfg = Nsga2Config::builder()
            .population_size(20)
            .generations(10)
            .build()
            .unwrap();
        let a = Nsga2::new(Schaffer::new(), cfg.clone())
            .run_seeded(7)
            .unwrap();
        let b = Nsga2::new(Schaffer::new(), cfg).run_seeded(7).unwrap();
        assert_eq!(a.front_objectives(), b.front_objectives());
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = Nsga2Config::builder()
            .population_size(20)
            .generations(10)
            .build()
            .unwrap();
        let a = Nsga2::new(Schaffer::new(), cfg.clone())
            .run_seeded(7)
            .unwrap();
        let b = Nsga2::new(Schaffer::new(), cfg).run_seeded(8).unwrap();
        assert_ne!(a.front_objectives(), b.front_objectives());
    }

    #[test]
    fn evaluation_budget_accounted() {
        let cfg = Nsga2Config::builder()
            .population_size(10)
            .generations(5)
            .build()
            .unwrap();
        let r = Nsga2::new(Schaffer::new(), cfg).run_seeded(1).unwrap();
        assert_eq!(r.evaluations, 10 + 5 * 10);
        assert_eq!(r.generations, 5);
    }

    #[test]
    fn schaffer_converges_near_true_front() {
        // SCH true front: f2 = (sqrt(f1) - 2)^2 for f1 in [0,4].
        let cfg = Nsga2Config::builder()
            .population_size(60)
            .generations(60)
            .build()
            .unwrap();
        let r = Nsga2::new(Schaffer::new(), cfg).run_seeded(42).unwrap();
        assert!(r.front.len() > 10);
        for m in &r.front {
            let f1 = m.objective(0);
            let f2 = m.objective(1);
            let expected = (f1.sqrt() - 2.0).powi(2);
            // Relative tolerance: the front is steep near f1 = 0, where a
            // tiny gene offset moves f2 a lot.
            assert!(
                (f2 - expected).abs() < 0.05 + 0.1 * (1.0 + expected),
                "point ({f1}, {f2}) too far from true front ({expected})"
            );
        }
    }

    #[test]
    fn zdt1_improves_over_generations() {
        use crate::hypervolume::hypervolume_2d;
        let problem = Zdt1::new(8);
        let cfg_short = Nsga2Config::builder()
            .population_size(40)
            .generations(5)
            .build()
            .unwrap();
        let cfg_long = Nsga2Config::builder()
            .population_size(40)
            .generations(80)
            .build()
            .unwrap();
        let to_pts = |r: &RunOutcome| -> Vec<[f64; 2]> {
            r.front
                .iter()
                .map(|m| [m.objective(0), m.objective(1)])
                .collect()
        };
        let short = Nsga2::new(&problem, cfg_short).run_seeded(3).unwrap();
        let long = Nsga2::new(&problem, cfg_long).run_seeded(3).unwrap();
        let hv_short = hypervolume_2d(&to_pts(&short), [1.1, 11.0]);
        let hv_long = hypervolume_2d(&to_pts(&long), [1.1, 11.0]);
        assert!(
            hv_long > hv_short,
            "hypervolume should improve: {hv_short} -> {hv_long}"
        );
    }

    #[test]
    fn trace_sees_every_generation() {
        let cfg = Nsga2Config::builder()
            .population_size(8)
            .generations(4)
            .build()
            .unwrap();
        let mut seen = Vec::new();
        let r = Nsga2::new(Schaffer::new(), cfg)
            .run_traced(1, |t| {
                seen.push((t.generation, t.population.len(), t.evaluations));
            })
            .unwrap();
        assert_eq!(seen.len(), 5); // init + 4 generations
        assert!(seen.iter().all(|&(_, n, _)| n == 8));
        // Cumulative evaluation counters are non-decreasing and end at
        // the run total.
        assert!(seen.windows(2).all(|w| w[0].2 <= w[1].2));
        assert_eq!(seen.last().unwrap().2 as usize, r.evaluations);
        // History mirrors the trace, one row per callback.
        assert_eq!(r.history.len(), 5);
        assert!(r.history.iter().all(|h| h.phase == 2 && h.promoted == 0));
    }

    #[test]
    fn traced_run_matches_untraced_run() {
        let cfg = Nsga2Config::builder()
            .population_size(16)
            .generations(6)
            .build()
            .unwrap();
        let plain = Nsga2::new(Schaffer::new(), cfg.clone())
            .run_seeded(11)
            .unwrap();
        let traced = Nsga2::new(Schaffer::new(), cfg)
            .run_traced(11, |_| {})
            .unwrap();
        assert_eq!(plain.front_objectives(), traced.front_objectives());
    }

    #[test]
    fn trace_surfaces_fault_events() {
        let cfg = Nsga2Config::builder()
            .population_size(16)
            .generations(6)
            .fault_policy(engine::FaultPolicy::tolerant(3))
            .inject_faults(engine::FaultPlan::seeded(5).panics(0.1))
            .build()
            .unwrap();
        let mut fault_total = 0;
        let r = Nsga2::new(Schaffer::new(), cfg)
            .run_traced(9, |t| fault_total += t.faults.len())
            .unwrap();
        assert_eq!(fault_total as u64, r.stats.recovered + r.stats.quarantined);
        assert!(fault_total > 0);
    }

    #[test]
    fn fault_injected_run_matches_fault_free_front() {
        let base = Nsga2Config::builder().population_size(24).generations(12);
        let clean_cfg = base.clone().build().unwrap();
        let faulty_cfg = base
            .fault_policy(engine::FaultPolicy::tolerant(3))
            .inject_faults(engine::FaultPlan::seeded(5).panics(0.05).nonfinite(0.05))
            .build()
            .unwrap();
        let clean = Nsga2::new(Schaffer::new(), clean_cfg)
            .run_seeded(9)
            .unwrap();
        let faulty = Nsga2::new(Schaffer::new(), faulty_cfg)
            .run_seeded(9)
            .unwrap();
        assert_eq!(clean.front_objectives(), faulty.front_objectives());
        assert!(faulty.stats.failures > 0);
        assert_eq!(
            faulty.stats.failures,
            faulty.stats.injected_panics + faulty.stats.injected_nonfinite
        );
        assert_eq!(faulty.stats.recovered, faulty.stats.failures);
        assert_eq!(clean.stats.failures, 0);
    }

    #[test]
    fn aborting_fault_policy_propagates_typed_error() {
        let cfg = Nsga2Config::builder()
            .population_size(8)
            .generations(2)
            .inject_faults(engine::FaultPlan::seeded(1).panics(1.0))
            .build()
            .unwrap();
        let err = Nsga2::new(Schaffer::new(), cfg).run_seeded(1).unwrap_err();
        match err {
            crate::OptimizeError::EvaluationFailed(f) => {
                assert_eq!(f.kind, engine::FaultKind::Panic)
            }
            other => panic!("expected EvaluationFailed, got {other:?}"),
        }
    }

    #[test]
    fn front_members_are_rank_zero_feasible() {
        let cfg = Nsga2Config::builder()
            .population_size(16)
            .generations(8)
            .build()
            .unwrap();
        let r = Nsga2::new(Schaffer::new(), cfg).run_seeded(2).unwrap();
        assert!(r.front.iter().all(|m| m.rank == 0 && m.is_feasible()));
    }
}
