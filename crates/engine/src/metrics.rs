//! A dependency-free, process-wide metrics plane.
//!
//! [`MetricsRegistry`] is a thread-safe, cloneable registry of monotonic
//! [`Counter`]s, [`Gauge`]s and fixed-bucket [`Histogram`]s. Handles are
//! cheap `Arc`-backed clones whose hot-path operations are single atomic
//! instructions (a CAS loop for histogram sums), so instrumented code
//! never takes the registry lock while recording — only registration and
//! snapshotting do.
//!
//! Metrics carry a small label model: `tenant`, `job`, `arm`, `stage`
//! and `worker`. Registration is idempotent — asking for the same name,
//! label set and type returns a handle to the same underlying cell, so a
//! resumed job keeps incrementing the counters its first slice created.
//!
//! [`MetricsRegistry::render_text`] emits a deterministic, sorted
//! Prometheus-style text exposition (`# TYPE` headers, cumulative
//! `_bucket{le="..."}` samples, `_sum`/`_count`);
//! [`MetricsRegistry::render_json`] emits the same snapshot as one
//! canonical JSON document. Both sort by `(name, labels)` so two
//! snapshots of equal state are byte-identical regardless of
//! registration order or thread interleaving.
//!
//! [`EngineMetrics`] and [`PoolMetrics`] bundle the handles the
//! execution engine and the worker pool record into; attaching them to
//! an engine observes evaluation without steering it (recording never
//! touches the RNG or candidate ordering).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Label names a metric may carry, in the canonical emission order.
pub const LABEL_NAMES: [&str; 6] = ["tenant", "job", "arm", "stage", "worker", "cell"];

/// A monotonic counter. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding one `f64` (stored as bits). Cloning shares the cell.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Shared state behind a [`Histogram`] handle.
#[derive(Debug)]
struct HistogramCore {
    /// Finite, strictly increasing upper bounds; observations above the
    /// last bound land in the implicit `+Inf` bucket.
    bounds: Vec<f64>,
    /// Non-cumulative per-bucket hit counts, `bounds.len() + 1` long
    /// (the last slot is the `+Inf` bucket). Snapshots cumulate.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Running sum of observations as `f64` bits, updated by CAS.
    sum_bits: AtomicU64,
}

impl HistogramCore {
    fn new(bounds: Vec<f64>) -> Self {
        let slots = bounds.len() + 1;
        HistogramCore {
            bounds,
            buckets: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

/// A fixed-bucket histogram. Cloning shares the underlying cells.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let core = &*self.0;
        let slot = core
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(core.bounds.len());
        core.buckets[slot].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match core.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Records a duration in seconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Records `n` observations of the same value in one shot — used to
    /// amortize a batch kernel's wall time over its candidates.
    pub fn observe_n(&self, v: f64, n: u64) {
        if n == 0 {
            return;
        }
        let core = &*self.0;
        let slot = core
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(core.bounds.len());
        core.buckets[slot].fetch_add(n, Ordering::Relaxed);
        core.count.fetch_add(n, Ordering::Relaxed);
        #[allow(clippy::cast_precision_loss)]
        let add = v * n as f64;
        let mut cur = core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + add).to_bits();
            match core.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// The finite bucket bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.0.bounds
    }

    /// Cumulative bucket counts, one per finite bound plus the trailing
    /// `+Inf` bucket (which always equals [`Histogram::count`] once
    /// concurrent writers settle).
    pub fn cumulative_buckets(&self) -> Vec<u64> {
        let mut total = 0u64;
        self.0
            .buckets
            .iter()
            .map(|b| {
                total += b.load(Ordering::Relaxed);
                total
            })
            .collect()
    }
}

/// Exponential latency bounds in seconds, ~1 µs to ~16 s.
pub fn latency_buckets() -> Vec<f64> {
    let mut out = Vec::with_capacity(13);
    let mut b = 1e-6;
    for _ in 0..13 {
        out.push(b);
        b *= 4.0;
    }
    out
}

/// Power-of-two batch-size bounds, 1 to 4096.
pub fn batch_buckets() -> Vec<f64> {
    (0..13).map(|i| f64::from(1u32 << i)).collect()
}

#[derive(Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn type_token(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// `(name, sorted labels)` — the registry key and snapshot sort order.
type MetricKey = (String, Vec<(String, String)>);

/// A thread-safe registry of named, labeled metrics.
///
/// Cloning shares the registry; a default registry is empty. See the
/// [module docs](self) for the registration and snapshot contract.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<BTreeMap<MetricKey, Metric>>>,
}

/// Validates a metric/label name and canonicalizes labels for keying.
fn canonical_labels(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    assert!(
        !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
        "invalid metric name {name:?}"
    );
    let mut out: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| {
            assert!(
                LABEL_NAMES.contains(k),
                "unknown label {k:?} (expected one of {LABEL_NAMES:?})"
            );
            ((*k).to_string(), (*v).to_string())
        })
        .collect();
    out.sort();
    out.dedup();
    (name.to_string(), out)
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `other` is a handle to the same registry.
    pub fn same_registry(&self, other: &MetricsRegistry) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Registers (or retrieves) a counter.
    ///
    /// # Panics
    ///
    /// Panics on an invalid name, a label outside [`LABEL_NAMES`], or if
    /// the name+labels already hold a different metric type.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = canonical_labels(name, labels);
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map
            .entry(key)
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("{name}: registered as {}, not counter", other.type_token()),
        }
    }

    /// Registers (or retrieves) a gauge. Panics as [`MetricsRegistry::counter`] does.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = canonical_labels(name, labels);
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map
            .entry(key)
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("{name}: registered as {}, not gauge", other.type_token()),
        }
    }

    /// Registers (or retrieves) a histogram with the given finite,
    /// strictly increasing bucket bounds.
    ///
    /// # Panics
    ///
    /// Panics as [`MetricsRegistry::counter`] does, on unsorted or
    /// non-finite bounds, and if an existing histogram under the same
    /// name+labels has different bounds.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Histogram {
        assert!(
            !bounds.is_empty()
                && bounds.iter().all(|b| b.is_finite())
                && bounds.windows(2).all(|w| w[0] < w[1]),
            "{name}: histogram bounds must be finite and strictly increasing"
        );
        let key = canonical_labels(name, labels);
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map.entry(key).or_insert_with(|| {
            Metric::Histogram(Histogram(Arc::new(HistogramCore::new(bounds.to_vec()))))
        }) {
            Metric::Histogram(h) => {
                assert!(
                    h.bounds() == bounds,
                    "{name}: histogram re-registered with different bounds"
                );
                h.clone()
            }
            other => panic!(
                "{name}: registered as {}, not histogram",
                other.type_token()
            ),
        }
    }

    /// Renders the Prometheus-style text exposition: one `# TYPE` header
    /// per metric name, samples sorted by `(name, labels)`, histograms
    /// as cumulative `_bucket{le="..."}` plus `_sum` and `_count`.
    pub fn render_text(&self) -> String {
        let map = self.inner.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        let mut last_name = "";
        for ((name, labels), metric) in map.iter() {
            if name != last_name {
                out.push_str(&format!("# TYPE {name} {}\n", metric.type_token()));
            }
            last_name = name;
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!(
                        "{name}{} {}\n",
                        render_labels(labels, None),
                        c.get()
                    ));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!(
                        "{name}{} {}\n",
                        render_labels(labels, None),
                        fmt_f64(g.get())
                    ));
                }
                Metric::Histogram(h) => {
                    let cumulative = h.cumulative_buckets();
                    for (i, bound) in h.bounds().iter().enumerate() {
                        out.push_str(&format!(
                            "{name}_bucket{} {}\n",
                            render_labels(labels, Some(&fmt_f64(*bound))),
                            cumulative[i]
                        ));
                    }
                    out.push_str(&format!(
                        "{name}_bucket{} {}\n",
                        render_labels(labels, Some("+Inf")),
                        cumulative[h.bounds().len()]
                    ));
                    out.push_str(&format!(
                        "{name}_sum{} {}\n",
                        render_labels(labels, None),
                        fmt_f64(h.sum())
                    ));
                    out.push_str(&format!(
                        "{name}_count{} {}\n",
                        render_labels(labels, None),
                        h.count()
                    ));
                }
            }
        }
        out
    }

    /// Renders the same snapshot as one canonical JSON document:
    /// `{"metrics":[...]}` in the text exposition's sort order.
    pub fn render_json(&self) -> String {
        let map = self.inner.lock().expect("metrics registry poisoned");
        let mut rows = Vec::with_capacity(map.len());
        for ((name, labels), metric) in map.iter() {
            let labels_json = labels
                .iter()
                .map(|(k, v)| format!("{}:{}", json_str(k), json_str(v)))
                .collect::<Vec<_>>()
                .join(",");
            let row = match metric {
                Metric::Counter(c) => format!(
                    "{{\"name\":{},\"type\":\"counter\",\"labels\":{{{labels_json}}},\"value\":{}}}",
                    json_str(name),
                    c.get()
                ),
                Metric::Gauge(g) => format!(
                    "{{\"name\":{},\"type\":\"gauge\",\"labels\":{{{labels_json}}},\"value\":{}}}",
                    json_str(name),
                    json_f64(g.get())
                ),
                Metric::Histogram(h) => {
                    let cumulative = h.cumulative_buckets();
                    let buckets = h
                        .bounds()
                        .iter()
                        .enumerate()
                        .map(|(i, b)| format!("{{\"le\":{},\"count\":{}}}", json_f64(*b), cumulative[i]))
                        .chain(std::iter::once(format!(
                            "{{\"le\":\"+Inf\",\"count\":{}}}",
                            cumulative[h.bounds().len()]
                        )))
                        .collect::<Vec<_>>()
                        .join(",");
                    format!(
                        "{{\"name\":{},\"type\":\"histogram\",\"labels\":{{{labels_json}}},\
                         \"buckets\":[{buckets}],\"sum\":{},\"count\":{}}}",
                        json_str(name),
                        json_f64(h.sum()),
                        h.count()
                    )
                }
            };
            rows.push(row);
        }
        format!("{{\"metrics\":[{}]}}", rows.join(","))
    }
}

/// Formats a label set (plus an optional `le` bound) for exposition.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Escapes a label value for the text exposition.
fn escape_label(v: &str) -> String {
    v.chars()
        .flat_map(|c| match c {
            '\\' => vec!['\\', '\\'],
            '"' => vec!['\\', '"'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect()
}

/// Deterministic shortest-roundtrip float rendering (Rust `Debug`).
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v}")
    } else {
        format!("{v:?}")
    }
}

/// JSON float rendering: finite values roundtrip, non-finite become null.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        fmt_f64(v)
    } else {
        "null".into()
    }
}

/// JSON string literal with minimal escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The engine-side metric bundle: evaluation counters mirroring
/// [`EngineStats`](crate::EngineStats), a per-evaluation latency
/// histogram and a batch-size histogram.
///
/// Handles are shared clones; equality is *identity* (same underlying
/// cells), so configs holding a bundle stay `PartialEq`-derivable.
#[derive(Clone, Debug)]
pub struct EngineMetrics {
    /// Candidates submitted (`dse_engine_candidates_total`).
    pub candidates: Counter,
    /// Full model evaluations performed (`dse_engine_evaluations_total`).
    pub evaluations: Counter,
    /// Memoization hits (`dse_engine_cache_hits_total`).
    pub cache_hits: Counter,
    /// Candidates answered by the surrogate screen (`dse_engine_screened_total`).
    pub screened: Counter,
    /// Fault retries attempted (`dse_engine_fault_retries_total`).
    pub fault_retries: Counter,
    /// Faults recovered by retry (`dse_engine_fault_recovered_total`).
    pub fault_recovered: Counter,
    /// Candidates quarantined (`dse_engine_fault_quarantined_total`).
    pub fault_quarantined: Counter,
    /// Per-evaluation wall latency in seconds
    /// (`dse_engine_eval_latency_seconds`; kernel batches amortize).
    pub eval_latency: Histogram,
    /// Engine batch sizes (`dse_engine_batch_size`).
    pub batch_size: Histogram,
}

impl EngineMetrics {
    /// Registers the bundle under `labels` in `registry`.
    pub fn register(registry: &MetricsRegistry, labels: &[(&str, &str)]) -> Self {
        EngineMetrics {
            candidates: registry.counter("dse_engine_candidates_total", labels),
            evaluations: registry.counter("dse_engine_evaluations_total", labels),
            cache_hits: registry.counter("dse_engine_cache_hits_total", labels),
            screened: registry.counter("dse_engine_screened_total", labels),
            fault_retries: registry.counter("dse_engine_fault_retries_total", labels),
            fault_recovered: registry.counter("dse_engine_fault_recovered_total", labels),
            fault_quarantined: registry.counter("dse_engine_fault_quarantined_total", labels),
            eval_latency: registry.histogram(
                "dse_engine_eval_latency_seconds",
                labels,
                &latency_buckets(),
            ),
            batch_size: registry.histogram("dse_engine_batch_size", labels, &batch_buckets()),
        }
    }
}

impl PartialEq for EngineMetrics {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.candidates.0, &other.candidates.0)
    }
}

/// Worker-pool metric bundle: queue-wait and task-run histograms plus
/// per-worker busy-fraction gauges (labeled `worker="<index>"`).
#[derive(Clone, Debug)]
pub struct PoolMetrics {
    /// Seconds between pool/task availability and a worker claiming the
    /// item (`dse_pool_queue_wait_seconds`).
    pub queue_wait: Histogram,
    /// Seconds spent running one claimed item (`dse_pool_task_run_seconds`).
    pub task_run: Histogram,
    registry: MetricsRegistry,
    labels: Vec<(String, String)>,
}

impl PoolMetrics {
    /// Registers the bundle under `labels` in `registry`.
    pub fn register(registry: &MetricsRegistry, labels: &[(&str, &str)]) -> Self {
        PoolMetrics {
            queue_wait: registry.histogram(
                "dse_pool_queue_wait_seconds",
                labels,
                &latency_buckets(),
            ),
            task_run: registry.histogram("dse_pool_task_run_seconds", labels, &latency_buckets()),
            registry: registry.clone(),
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                .collect(),
        }
    }

    /// The busy-fraction gauge for worker `w`
    /// (`dse_pool_worker_busy_ratio{worker="<w>"}`).
    pub fn worker_busy(&self, w: usize) -> Gauge {
        let w = w.to_string();
        let mut labels: Vec<(&str, &str)> = self
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        labels.retain(|(k, _)| *k != "worker");
        labels.push(("worker", w.as_str()));
        self.registry.gauge("dse_pool_worker_busy_ratio", &labels)
    }
}

impl PartialEq for PoolMetrics {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.queue_wait.0, &other.queue_wait.0)
    }
}

/// A factory for per-cell metric bundles of a structured-population
/// (cellular) run: each cell of the topology gets its own label slice
/// (`cell="<index>"`) under the base labels the series was registered
/// with.
///
/// Like the other bundles this is observation only — recording never
/// touches the optimizer's RNG — and equality is identity, so configs
/// holding a series stay `PartialEq`-derivable.
#[derive(Clone, Debug)]
pub struct CellSeries {
    registry: MetricsRegistry,
    labels: Vec<(String, String)>,
}

impl CellSeries {
    /// Registers a series under `labels` in `registry`.
    pub fn register(registry: &MetricsRegistry, labels: &[(&str, &str)]) -> Self {
        CellSeries {
            registry: registry.clone(),
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                .collect(),
        }
    }

    /// The underlying registry (for scraping in tests and endpoints).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The metric bundle of cell `index` (`cell="<index>"` replaces any
    /// inherited `cell` label). Registration is idempotent, so calling
    /// this again — e.g. after a resume — returns handles to the same
    /// cells.
    pub fn cell(&self, index: usize) -> CellMetrics {
        let idx = index.to_string();
        let mut labels: Vec<(&str, &str)> = self
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        labels.retain(|(k, _)| *k != "cell");
        labels.push(("cell", idx.as_str()));
        let stage = |stage: &'static str| {
            let mut with_stage = labels.clone();
            with_stage.retain(|(k, _)| *k != "stage");
            with_stage.push(("stage", stage));
            self.registry
                .counter("dse_cell_stage_nanos_total", &with_stage)
        };
        CellMetrics {
            candidates: self.registry.counter("dse_cell_candidates_total", &labels),
            variation_nanos: stage("variation"),
            selection_nanos: stage("selection"),
            front_size: self.registry.gauge("dse_cell_front_size", &labels),
        }
    }
}

impl PartialEq for CellSeries {
    fn eq(&self, other: &Self) -> bool {
        self.registry.same_registry(&other.registry) && self.labels == other.labels
    }
}

/// Per-cell metric bundle handed out by [`CellSeries::cell`].
#[derive(Clone, Debug)]
pub struct CellMetrics {
    /// Offspring bred by this cell (`dse_cell_candidates_total`).
    pub candidates: Counter,
    /// Nanoseconds this cell spent breeding
    /// (`dse_cell_stage_nanos_total{stage="variation"}`).
    pub variation_nanos: Counter,
    /// Nanoseconds this cell spent on survivor selection
    /// (`dse_cell_stage_nanos_total{stage="selection"}`).
    pub selection_nanos: Counter,
    /// Size of the cell's local rank-0 front after the latest selection
    /// (`dse_cell_front_size`).
    pub front_size: Gauge,
}

impl PartialEq for CellMetrics {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.candidates.0, &other.candidates.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("dse_test_total", &[("tenant", "acme")]);
        c.inc();
        c.add(2);
        assert_eq!(c.get(), 3);
        // Idempotent registration returns the same cell.
        assert_eq!(
            reg.counter("dse_test_total", &[("tenant", "acme")]).get(),
            3
        );
        let g = reg.gauge("dse_test_depth", &[]);
        g.set(2.5);
        assert!((g.get() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_cumulate_and_balance() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("dse_test_seconds", &[], &[0.1, 1.0, 10.0]);
        for v in [0.05, 0.5, 0.5, 5.0, 50.0] {
            h.observe(v);
        }
        assert_eq!(h.cumulative_buckets(), vec![1, 3, 4, 5]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 56.05).abs() < 1e-9);
    }

    #[test]
    fn text_exposition_is_sorted_and_typed() {
        let reg = MetricsRegistry::new();
        reg.counter("dse_b_total", &[("tenant", "t2")]).inc();
        reg.counter("dse_b_total", &[("tenant", "t1")]).add(2);
        reg.gauge("dse_a_depth", &[]).set(4.0);
        let text = reg.render_text();
        let expected = "# TYPE dse_a_depth gauge\n\
                        dse_a_depth 4\n\
                        # TYPE dse_b_total counter\n\
                        dse_b_total{tenant=\"t1\"} 2\n\
                        dse_b_total{tenant=\"t2\"} 1\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn histogram_exposition_has_inf_bucket_sum_and_count() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("dse_lat_seconds", &[("job", "j1")], &[0.5, 2.0]);
        h.observe(0.25);
        h.observe(8.0);
        let text = reg.render_text();
        assert!(text.contains("# TYPE dse_lat_seconds histogram"));
        assert!(text.contains("dse_lat_seconds_bucket{job=\"j1\",le=\"0.5\"} 1"));
        assert!(text.contains("dse_lat_seconds_bucket{job=\"j1\",le=\"2\"} 1"));
        assert!(text.contains("dse_lat_seconds_bucket{job=\"j1\",le=\"+Inf\"} 2"));
        assert!(text.contains("dse_lat_seconds_sum{job=\"j1\"} 8.25"));
        assert!(text.contains("dse_lat_seconds_count{job=\"j1\"} 2"));
    }

    #[test]
    fn json_snapshot_is_canonical() {
        let reg = MetricsRegistry::new();
        reg.counter("dse_x_total", &[("arm", "sacga")]).add(7);
        let json = reg.render_json();
        assert_eq!(
            json,
            "{\"metrics\":[{\"name\":\"dse_x_total\",\"type\":\"counter\",\
             \"labels\":{\"arm\":\"sacga\"},\"value\":7}]}"
        );
    }

    #[test]
    fn snapshots_are_identical_across_registration_order_and_threads() {
        let render = |names: &[&str]| {
            let reg = MetricsRegistry::new();
            thread::scope(|s| {
                for name in names {
                    let reg = reg.clone();
                    s.spawn(move || {
                        reg.counter(name, &[("stage", "eval")]).add(1);
                        reg.counter(name, &[("stage", "eval")]).add(2);
                    });
                }
            });
            reg.render_text()
        };
        let a = render(&["dse_m1_total", "dse_m2_total", "dse_m3_total"]);
        let b = render(&["dse_m3_total", "dse_m1_total", "dse_m2_total"]);
        assert_eq!(a, b);
        assert!(a.contains("dse_m2_total{stage=\"eval\"} 3"));
    }

    #[test]
    #[should_panic(expected = "not counter")]
    fn type_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.gauge("dse_clash", &[]);
        reg.counter("dse_clash", &[]);
    }

    #[test]
    #[should_panic(expected = "unknown label")]
    fn unknown_label_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("dse_total", &[("host", "a")]);
    }

    #[test]
    fn engine_metrics_equality_is_identity() {
        let reg = MetricsRegistry::new();
        let a = EngineMetrics::register(&reg, &[("tenant", "t")]);
        let b = EngineMetrics::register(&reg, &[("tenant", "t")]);
        let c = EngineMetrics::register(&reg, &[("tenant", "u")]);
        assert_eq!(a, b, "same cells");
        assert_ne!(a, c, "different label set, different cells");
    }

    #[test]
    fn cell_series_hands_out_per_cell_bundles() {
        let reg = MetricsRegistry::new();
        let series = CellSeries::register(&reg, &[("job", "j1"), ("arm", "cellular")]);
        series.cell(0).candidates.add(8);
        series.cell(1).variation_nanos.add(250);
        series.cell(1).front_size.set(3.0);
        // Idempotent: a second hand-out shares the same cells.
        assert_eq!(series.cell(0).candidates.get(), 8);
        assert_eq!(series.cell(0), series.cell(0));
        assert_ne!(series.cell(0), series.cell(1));
        let text = reg.render_text();
        assert!(
            text.contains("dse_cell_candidates_total{arm=\"cellular\",cell=\"0\",job=\"j1\"} 8")
        );
        assert!(text.contains(
            "dse_cell_stage_nanos_total{arm=\"cellular\",cell=\"1\",job=\"j1\",stage=\"variation\"} 250"
        ));
        assert!(text.contains("dse_cell_front_size{arm=\"cellular\",cell=\"1\",job=\"j1\"} 3"));
    }

    #[test]
    fn pool_metrics_worker_gauges_are_labeled() {
        let reg = MetricsRegistry::new();
        let pool = PoolMetrics::register(&reg, &[("tenant", "t")]);
        pool.worker_busy(0).set(0.5);
        pool.worker_busy(1).set(1.0);
        let text = reg.render_text();
        assert!(text.contains("dse_pool_worker_busy_ratio{tenant=\"t\",worker=\"0\"} 0.5"));
        assert!(text.contains("dse_pool_worker_busy_ratio{tenant=\"t\",worker=\"1\"} 1"));
    }
}
