//! Incremental submission/completion evaluation: the engine API behind
//! steady-state (asynchronous) evolution.
//!
//! A generational loop hands the engine a whole batch and blocks on the
//! barrier at its end. An [`EvaluationSession`] decomposes that barrier:
//! candidates are [`submit`](EvaluationSession::submit)ted one at a time
//! as selection produces them, evaluations proceed out of order on a
//! worker pool, and [`drain`](EvaluationSession::drain) hands completed
//! results back **in submission order** — a deterministic merge order
//! that makes seeded steady-state runs bit-identical whether the session
//! runs serial or over any number of workers.
//!
//! The session preserves every semantic of the one-shot batch calls:
//!
//! * **Cache/canonicalizer**: each submission is resolved against the
//!   active memoization layer at submit time, on the control thread, in
//!   submission order. A duplicate of an earlier *undrained* submission
//!   aliases that submission's future result (counted as a cache hit),
//!   exactly like within-batch duplicates in
//!   [`try_evaluate_batch_with`](crate::ExecutionEngine::try_evaluate_batch_with).
//!   Completed results enter the cache at drain time, in submission
//!   order; tainted and screened values are never cached.
//! * **Screen**: cache-miss submissions are offered to the surrogate
//!   screen at submit time; answered candidates never reach the model
//!   and count in [`EngineStats::screened`](crate::EngineStats).
//! * **Faults**: every dispatched candidate runs under the configured
//!   [`FaultPolicy`] (with injection when a plan is armed). Fault
//!   counters and [`FaultEvent`]s fold into [`EngineStats`] at drain
//!   time in submission order, so they are identical under serial and
//!   parallel execution; the first exhausted candidate (by submission
//!   index) surfaces as the drain's [`EvalFailure`].
//! * **Accounting**: `candidates == evaluations + cache_hits + screened`
//!   holds at every drain boundary. Each drain counts one batch;
//!   `max_batch` tracks the largest drain.
//!
//! Under the serial evaluator, evaluation is deferred to the drain so
//! the whole outstanding miss set still goes through the problem's batch
//! kernel in one call (fault-scheduled candidates keep the scalar
//! guarded path, as in the one-shot API). Under a parallel evaluator,
//! misses are dispatched to scoped worker threads at submit time and
//! overlap with selection — the steady-state payoff.
//!
//! A session that returns an error from a drain is poisoned: the failed
//! drain's submissions are lost and further use is unsupported (the
//! one-shot API loses the whole batch in the same way).

use crate::cache::MemoCache;
use crate::engine::{observe_amortized, push_fault_event, CacheCanonicalizer, ExecutionEngine};
use crate::evaluator::EvaluatorKind;
use crate::fault::{
    EvalFailure, EvalOutcome, FaultEvent, FaultInjector, FaultPolicy, FaultResolution,
    InjectionCounts, Quarantine,
};
use crate::metrics::EngineMetrics;
use crate::screen::SurrogateScreen;
use crate::shared::SharedCache;
use crate::stats::EngineStats;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Mutex;
use std::time::Instant;

/// Lifecycle of one submission inside a session.
enum Slot<T> {
    /// Value known at submit time: cache hit, screened placeholder, or a
    /// completion restored from a checkpoint. Retained after drain (as
    /// [`Slot::Done`]) so later-drained aliases can read it.
    Ready(T),
    /// Duplicate of the earlier, still-pending submission at this index.
    Alias(usize),
    /// Dispatched to the worker pool; its outcome has not arrived yet.
    InFlight,
    /// Buffered for drain-time evaluation (serial / inline modes).
    Queued(Vec<f64>),
    /// Outcome available but not yet folded into stats.
    Arrived(EvalOutcome<T>),
    /// Drained. `Some` retains the value for aliases; `None` marks a
    /// candidate lost to a fatal failure (the session is poisoned).
    Done(Option<T>),
}

/// Per-submission record: lifecycle slot plus the cache key a completed
/// miss should be stored under (`None` for hits, aliases, screened
/// candidates, and cache-disabled sessions).
struct Entry<T> {
    slot: Slot<T>,
    key: Option<Vec<i64>>,
}

/// The cache layer borrowed from the engine for the session's lifetime.
struct CacheView<'a, T> {
    shared: Option<&'a SharedCache<T>>,
    private: &'a mut MemoCache<T>,
    canonicalize: Option<CacheCanonicalizer>,
    enabled: bool,
}

impl<T: Clone> CacheView<'_, T> {
    fn key_of(&self, genes: &[f64]) -> Vec<i64> {
        let canonical;
        let genes = match self.canonicalize {
            Some(f) => {
                canonical = f(genes);
                &canonical[..]
            }
            None => genes,
        };
        match self.shared {
            Some(shared) => shared.key_of(genes),
            None => self.private.key_of(genes),
        }
    }

    fn get(&mut self, key: &[i64]) -> Option<T> {
        match self.shared {
            Some(shared) => shared.get(key),
            None => self.private.get(key),
        }
    }

    fn put(&mut self, key: Vec<i64>, value: T) {
        match self.shared {
            Some(shared) => shared.insert(key, value),
            None => self.private.insert(key, value),
        }
    }
}

/// Channels linking a session to its scoped worker pool.
struct WorkerLink<T> {
    jobs: Sender<(usize, Vec<f64>)>,
    done: Receiver<(usize, EvalOutcome<T>)>,
}

/// How dispatched candidates are evaluated.
enum Backend<T> {
    /// Serial evaluator: drain-time evaluation through the batch kernel.
    Kernel,
    /// Parallel evaluator resolved to a single worker: drain-time scalar
    /// guarded evaluation (matches the one-shot API's serial fallback,
    /// which never uses the kernel for parallel configurations).
    Inline,
    /// Live worker pool fed at submit time.
    Workers(WorkerLink<T>),
}

/// An open submission/completion session on an
/// [`ExecutionEngine`] — see the module docs.
/// Created by [`ExecutionEngine::with_session`]; borrows the engine
/// exclusively until the callback returns.
pub struct EvaluationSession<'a, T, F, B> {
    policy: FaultPolicy,
    stats: &'a mut EngineStats,
    fault_events: &'a mut Vec<FaultEvent>,
    injector: Option<&'a FaultInjector>,
    injected_base: InjectionCounts,
    screen: Option<SurrogateScreen<T>>,
    cache: CacheView<'a, T>,
    eval: &'a F,
    batch_eval: &'a B,
    backend: Backend<T>,
    entries: Vec<Entry<T>>,
    /// Cache key → submission index of the pending miss that owns it.
    pending: HashMap<Vec<i64>, usize>,
    drained: usize,
    /// Live metric handles mirroring the stats counters (observation
    /// only; never steers evaluation).
    metrics: Option<EngineMetrics>,
}

/// One candidate evaluation under the fault policy (and the injector,
/// when armed) — the same guarded call the one-shot API makes.
fn guarded_eval<T, F>(
    policy: FaultPolicy,
    injector: Option<&FaultInjector>,
    eval: &F,
    genes: &[f64],
) -> EvalOutcome<T>
where
    F: Fn(&[f64]) -> T + Sync,
    T: Quarantine,
{
    match injector {
        Some(inj) => policy.execute(&|g: &[f64]| inj.invoke(eval, g), genes),
        None => policy.execute(eval, genes),
    }
}

impl<'a, T, F, B> EvaluationSession<'a, T, F, B>
where
    T: Clone + Send + Quarantine,
    F: Fn(&[f64]) -> T + Sync,
    B: Fn(&[Vec<f64>]) -> Vec<T>,
{
    /// Total submissions so far (including drained ones).
    pub fn submitted(&self) -> usize {
        self.entries.len()
    }

    /// The engine's statistics, live as of the last submit or drain
    /// (the session mutates the engine's counters in place).
    pub fn stats(&self) -> &EngineStats {
        self.stats
    }

    /// Drains the fault episodes folded so far, exactly like
    /// [`ExecutionEngine::take_fault_events`](crate::ExecutionEngine::take_fault_events)
    /// — for callers that need to forward events mid-session, while the
    /// engine itself is exclusively borrowed.
    pub fn take_fault_events(&mut self) -> Vec<FaultEvent> {
        std::mem::take(self.fault_events)
    }

    /// Submissions already handed back by drains.
    pub fn drained(&self) -> usize {
        self.drained
    }

    /// Submissions not yet drained.
    pub fn in_flight(&self) -> usize {
        self.entries.len() - self.drained
    }

    /// Submits one candidate and returns its submission index.
    ///
    /// The candidate is resolved against the cache (and offered to the
    /// screen) immediately, on the calling thread; genuinely new
    /// candidates are dispatched to the worker pool (parallel) or
    /// buffered for the next drain's kernel call (serial). Its result is
    /// returned by the drain that covers this index.
    pub fn submit(&mut self, genes: &[f64]) -> usize {
        let idx = self.entries.len();
        self.stats.candidates += 1;
        if let Some(m) = &self.metrics {
            m.candidates.inc();
        }
        if self.cache.enabled {
            let key = self.cache.key_of(genes);
            if let Some(value) = self.cache.get(&key) {
                self.stats.cache_hits += 1;
                if let Some(m) = &self.metrics {
                    m.cache_hits.inc();
                }
                self.entries.push(Entry {
                    slot: Slot::Ready(value),
                    key: None,
                });
                return idx;
            }
            if let Some(&m) = self.pending.get(&key) {
                self.stats.cache_hits += 1;
                if let Some(mm) = &self.metrics {
                    mm.cache_hits.inc();
                }
                self.entries.push(Entry {
                    slot: Slot::Alias(m),
                    key: None,
                });
                return idx;
            }
            // A genuinely new candidate: later duplicates alias it even
            // when the screen answers it (the one-shot API resolves
            // duplicates before screening).
            self.pending.insert(key.clone(), idx);
            if self.screen_submission(genes) {
                return idx;
            }
            self.dispatch(idx, genes, Some(key));
        } else {
            if self.screen_submission(genes) {
                return idx;
            }
            self.dispatch(idx, genes, None);
        }
        idx
    }

    /// Restores a completion from a checkpoint: the value occupies the
    /// next submission index and is handed back by the covering drain,
    /// with no stats impact (the original submission was already
    /// accounted when it executed) and no cache insertion. Returns the
    /// submission index.
    pub fn prime(&mut self, value: T) -> usize {
        let idx = self.entries.len();
        self.entries.push(Entry {
            slot: Slot::Ready(value),
            key: None,
        });
        idx
    }

    /// Offers `genes` to the screen; on an answer, records the screened
    /// placeholder and returns `true`.
    fn screen_submission(&mut self, genes: &[f64]) -> bool {
        if let Some(screen) = &self.screen {
            if let Some(value) = screen.screen(genes) {
                self.stats.screened += 1;
                if let Some(m) = &self.metrics {
                    m.screened.inc();
                }
                self.entries.push(Entry {
                    slot: Slot::Ready(value),
                    key: None,
                });
                return true;
            }
        }
        false
    }

    /// Routes a cache-miss submission to the backend.
    fn dispatch(&mut self, idx: usize, genes: &[f64], key: Option<Vec<i64>>) {
        self.stats.evaluations += 1;
        if let Some(m) = &self.metrics {
            m.evaluations.inc();
        }
        let slot = match &self.backend {
            Backend::Workers(link) => {
                link.jobs
                    .send((idx, genes.to_vec()))
                    .expect("session worker pool hung up");
                Slot::InFlight
            }
            Backend::Kernel | Backend::Inline => Slot::Queued(genes.to_vec()),
        };
        self.entries.push(Entry { slot, key });
    }

    /// Drains every outstanding submission (a full barrier).
    ///
    /// # Errors
    ///
    /// See [`drain`](EvaluationSession::drain).
    pub fn drain_all(&mut self) -> Result<Vec<T>, EvalFailure> {
        self.drain(self.in_flight())
    }

    /// Drains the oldest `count` outstanding submissions (clamped to the
    /// number outstanding), blocking until their results are available,
    /// and returns their values **in submission order** regardless of
    /// completion interleaving. Counts one batch in [`EngineStats`].
    ///
    /// # Errors
    ///
    /// Returns the first [`EvalFailure`] (by submission index) when a
    /// drained candidate exhausted its retry budget under an aborting
    /// policy. All drained outcomes still fold into the stats, but no
    /// value from this drain enters the cache and the session is
    /// poisoned.
    pub fn drain(&mut self, count: usize) -> Result<Vec<T>, EvalFailure> {
        let count = count.min(self.in_flight());
        let lo = self.drained;
        let hi = lo + count;
        self.stats.batches += 1;
        self.stats.max_batch = self.stats.max_batch.max(count as u64);
        if let Some(m) = &self.metrics {
            #[allow(clippy::cast_precision_loss)]
            m.batch_size.observe(count as f64);
        }

        match &self.backend {
            Backend::Workers(_) => self.await_arrivals(lo, hi),
            Backend::Kernel => self.evaluate_queued(lo, hi, true),
            Backend::Inline => self.evaluate_queued(lo, hi, false),
        }

        // Fold arrived outcomes into the stats in submission order. The
        // value (or poison marker) replaces the outcome in place.
        let mut first_failure: Option<EvalFailure> = None;
        for i in lo..hi {
            let entry = &mut self.entries[i];
            if matches!(entry.slot, Slot::Arrived(_)) {
                let Slot::Arrived(outcome) = std::mem::replace(&mut entry.slot, Slot::Done(None))
                else {
                    unreachable!()
                };
                let value = fold_outcome(
                    self.stats,
                    self.fault_events,
                    self.metrics.as_ref(),
                    i,
                    outcome,
                    &mut first_failure,
                );
                self.entries[i].slot = Slot::Done(value);
            }
        }
        refresh_injection_stats(self.stats, self.injector, self.injected_base);
        if let Some(failure) = first_failure {
            self.drained = hi;
            return Err(failure);
        }

        // Success: store completed misses in the cache and emit values,
        // both in submission order (misses enter the cache in the same
        // order the one-shot API inserts them).
        let mut out = Vec::with_capacity(count);
        for i in lo..hi {
            let value = match &self.entries[i].slot {
                Slot::Ready(v) => {
                    let v = v.clone();
                    self.entries[i].slot = Slot::Done(Some(v.clone()));
                    v
                }
                Slot::Alias(m) => {
                    let m = *m;
                    let Slot::Done(Some(v)) = &self.entries[m].slot else {
                        unreachable!("an alias always drains after its target")
                    };
                    let v = v.clone();
                    self.entries[i].slot = Slot::Done(Some(v.clone()));
                    v
                }
                Slot::Done(Some(v)) => {
                    let v = v.clone();
                    if let Some(key) = self.entries[i].key.take() {
                        if !v.is_tainted() {
                            self.cache.put(key, v.clone());
                        }
                    }
                    v
                }
                _ => unreachable!("every drained slot is ready, aliased, or arrived"),
            };
            out.push(value);
        }
        self.drained = hi;
        Ok(out)
    }

    /// Blocks until every in-flight submission in `[lo, hi)` has arrived
    /// from the worker pool (arrivals outside the range are stored too).
    fn await_arrivals(&mut self, lo: usize, hi: usize) {
        let Backend::Workers(link) = &self.backend else {
            unreachable!()
        };
        let mut waiting = (lo..hi)
            .filter(|&i| matches!(self.entries[i].slot, Slot::InFlight))
            .count();
        let t0 = Instant::now();
        while waiting > 0 {
            let (idx, outcome) = link
                .done
                .recv()
                .expect("session worker pool died with work outstanding");
            if (lo..hi).contains(&idx) {
                waiting -= 1;
            }
            self.entries[idx].slot = Slot::Arrived(outcome);
        }
        self.stats.eval_time += t0.elapsed();
    }

    /// Evaluates the queued submissions in `[lo, hi)` on the calling
    /// thread. With `kernel` set (serial evaluator), fault-scheduled
    /// candidates take the scalar guarded path and the clean rest go
    /// through the batch kernel in one call, with taint-replay and
    /// panic/mis-size demotion exactly as in the one-shot API; without
    /// it, every candidate runs scalar guarded in submission order.
    fn evaluate_queued(&mut self, lo: usize, hi: usize, kernel: bool) {
        let policy = self.policy;
        let injector = self.injector;
        let eval = self.eval;
        let guarded = |genes: &[f64]| guarded_eval(policy, injector, eval, genes);
        let t0 = Instant::now();
        let mut evaluated = 0usize;
        let mut clean: Vec<(usize, Vec<f64>)> = Vec::new();
        for i in lo..hi {
            if matches!(self.entries[i].slot, Slot::Queued(_)) {
                evaluated += 1;
                let Slot::Queued(genes) =
                    std::mem::replace(&mut self.entries[i].slot, Slot::Done(None))
                else {
                    unreachable!()
                };
                if kernel && !injector.is_some_and(|inj| inj.schedules_fault(&genes)) {
                    clean.push((i, genes));
                } else {
                    self.entries[i].slot = Slot::Arrived(guarded(&genes));
                }
            }
        }
        if !clean.is_empty() {
            let clean_genes: Vec<Vec<f64>> = clean.iter().map(|(_, g)| g.clone()).collect();
            let batch_eval = self.batch_eval;
            match panic::catch_unwind(AssertUnwindSafe(|| batch_eval(&clean_genes))) {
                Ok(values) if values.len() == clean.len() => {
                    for ((i, genes), value) in clean.into_iter().zip(values) {
                        if policy.quarantine_nonfinite && value.is_tainted() {
                            // The scalar path would retry and then
                            // quarantine or fail this candidate; replay
                            // it so the accounting matches.
                            self.entries[i].slot = Slot::Arrived(guarded(&genes));
                        } else {
                            self.entries[i].slot = Slot::Arrived(EvalOutcome::Ok(value));
                        }
                    }
                }
                _ => {
                    // Kernel panicked or mis-sized its output: demote to
                    // the scalar guarded path.
                    for (i, genes) in clean {
                        self.entries[i].slot = Slot::Arrived(guarded(&genes));
                    }
                }
            }
        }
        let dt = t0.elapsed();
        self.stats.eval_time += dt;
        observe_amortized(self.metrics.as_ref(), dt, evaluated);
    }
}

/// Folds one outcome into the stats (mirroring the one-shot API's
/// absorb step) and returns its value, recording the first failure.
fn fold_outcome<T>(
    stats: &mut EngineStats,
    events: &mut Vec<FaultEvent>,
    metrics: Option<&EngineMetrics>,
    index: usize,
    outcome: EvalOutcome<T>,
    first_failure: &mut Option<EvalFailure>,
) -> Option<T> {
    let retries = outcome.retries() as u64;
    match outcome {
        EvalOutcome::Ok(value) => Some(value),
        EvalOutcome::Recovered {
            value,
            failures,
            backoff,
            kind,
        } => {
            stats.failures += failures as u64;
            stats.retries += retries;
            stats.recovered += 1;
            stats.backoff_time += backoff;
            if let Some(m) = metrics {
                m.fault_retries.add(retries);
                m.fault_recovered.inc();
            }
            push_fault_event(
                events,
                FaultEvent {
                    index,
                    kind,
                    failures,
                    resolution: FaultResolution::Recovered,
                },
            );
            Some(value)
        }
        EvalOutcome::Quarantined {
            value,
            failures,
            backoff,
            kind,
        } => {
            stats.failures += failures as u64;
            stats.retries += retries;
            stats.quarantined += 1;
            stats.backoff_time += backoff;
            if let Some(m) = metrics {
                m.fault_retries.add(retries);
                m.fault_quarantined.inc();
            }
            push_fault_event(
                events,
                FaultEvent {
                    index,
                    kind,
                    failures,
                    resolution: FaultResolution::Quarantined,
                },
            );
            Some(value)
        }
        EvalOutcome::Failed(mut failure) => {
            stats.failures += failure.attempts as u64;
            stats.retries += retries;
            stats.backoff_time += failure.backoff;
            if let Some(m) = metrics {
                m.fault_retries.add(retries);
            }
            if first_failure.is_none() {
                failure.index = index;
                *first_failure = Some(failure);
            }
            None
        }
    }
}

/// Copies the injector's running totals into the stats block (on top of
/// any totals restored from a checkpoint).
pub(crate) fn refresh_injection_stats(
    stats: &mut EngineStats,
    injector: Option<&FaultInjector>,
    base: InjectionCounts,
) {
    if let Some(injector) = injector {
        let counts = injector.counts();
        stats.injected_panics = base.panics + counts.panics;
        stats.injected_nonfinite = base.nonfinite + counts.nonfinite;
        stats.injected_delays = base.delays + counts.delays;
    }
}

/// Number of pool workers a session opens for the configured evaluator
/// (`0` means no pool: serial kernel or inline scalar evaluation).
fn worker_count(kind: EvaluatorKind) -> usize {
    let n = match kind {
        EvaluatorKind::Serial => return 0,
        EvaluatorKind::Parallel | EvaluatorKind::ParallelWith(0) => {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
        EvaluatorKind::ParallelWith(n) => n,
    };
    if n <= 1 {
        0
    } else {
        n
    }
}

/// Opens a session over `engine`'s borrowed internals, spawning the
/// scoped worker pool when the evaluator is parallel, and runs `f`.
pub(crate) fn run_session<T, F, B, R>(
    engine: &mut ExecutionEngine<T>,
    eval: &F,
    batch_eval: &B,
    f: impl FnOnce(&mut EvaluationSession<'_, T, F, B>) -> R,
) -> R
where
    T: Clone + Send + Quarantine,
    F: Fn(&[f64]) -> T + Sync,
    B: Fn(&[Vec<f64>]) -> Vec<T>,
{
    let ExecutionEngine {
        config,
        cache,
        shared,
        stats,
        canonicalize,
        screen,
        injector,
        injected_base,
        fault_events,
        metrics,
    } = engine;
    let policy = config.fault;
    let injector = injector.as_ref();
    let injected_base = *injected_base;
    let metrics = metrics.clone();
    let cache_view = CacheView {
        enabled: shared.is_some() || config.cache.capacity > 0,
        shared: shared.as_ref(),
        private: cache,
        canonicalize: *canonicalize,
    };
    let workers = worker_count(config.evaluator);
    if workers == 0 {
        let mut session = EvaluationSession {
            policy,
            stats,
            fault_events,
            injector,
            injected_base,
            screen: screen.clone(),
            cache: cache_view,
            eval,
            batch_eval,
            backend: if matches!(config.evaluator, EvaluatorKind::Serial) {
                Backend::Kernel
            } else {
                Backend::Inline
            },
            entries: Vec::new(),
            pending: HashMap::new(),
            drained: 0,
            metrics,
        };
        return f(&mut session);
    }
    let (job_tx, job_rx) = std::sync::mpsc::channel::<(usize, Vec<f64>)>();
    let (done_tx, done_rx) = std::sync::mpsc::channel::<(usize, EvalOutcome<T>)>();
    let job_rx = Mutex::new(job_rx);
    // Workers time each evaluation individually — genuine per-candidate
    // latency, unlike the kernel paths' amortized charge.
    let eval_latency = metrics.as_ref().map(|m| m.eval_latency.clone());
    std::thread::scope(|scope| {
        let job_rx = &job_rx;
        for _ in 0..workers {
            let done_tx = done_tx.clone();
            let eval_latency = eval_latency.clone();
            scope.spawn(move || loop {
                // Take one job at a time so slow candidates do not block
                // fast ones queued behind them on the same worker.
                let job = job_rx.lock().expect("session job queue poisoned").recv();
                match job {
                    Ok((idx, genes)) => {
                        let t0 = eval_latency.as_ref().map(|_| Instant::now());
                        let outcome = guarded_eval(policy, injector, eval, &genes);
                        if let (Some(h), Some(t0)) = (&eval_latency, t0) {
                            h.observe_duration(t0.elapsed());
                        }
                        // The session may already be gone (undrained
                        // submissions at teardown); that is not an error.
                        if done_tx.send((idx, outcome)).is_err() {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            });
        }
        drop(done_tx);
        let mut session = EvaluationSession {
            policy,
            stats,
            fault_events,
            injector,
            injected_base,
            screen: screen.clone(),
            cache: cache_view,
            eval,
            batch_eval,
            backend: Backend::Workers(WorkerLink {
                jobs: job_tx,
                done: done_rx,
            }),
            entries: Vec::new(),
            pending: HashMap::new(),
            drained: 0,
            metrics,
        };
        let result = f(&mut session);
        // Dropping the session closes the job channel; workers drain any
        // leftover jobs and exit, then the scope joins them.
        drop(session);
        result
    })
}

#[cfg(test)]
mod tests {
    use crate::{
        EngineConfig, EvaluatorKind, ExecutionEngine, FaultPlan, FaultPolicy, SurrogateScreen,
    };
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scalar(genes: &[f64]) -> f64 {
        genes.iter().map(|x| x * 3.0 + 1.0).sum()
    }

    fn kernel(chunk: &[Vec<f64>]) -> Vec<f64> {
        chunk.iter().map(|g| scalar(g)).collect()
    }

    #[test]
    fn incremental_submit_drain_matches_one_shot_batch() {
        let batch: Vec<Vec<f64>> = (0..20).map(|i| vec![(i % 7) as f64, 0.25]).collect();
        let mut one_shot: ExecutionEngine<f64> =
            ExecutionEngine::new(EngineConfig::default().cache_capacity(32));
        let expect = one_shot
            .try_evaluate_batch_with(&batch, &scalar, &kernel)
            .unwrap();

        let mut engine: ExecutionEngine<f64> =
            ExecutionEngine::new(EngineConfig::default().cache_capacity(32));
        let got = engine.with_session(&scalar, &kernel, |session| {
            let mut got = Vec::new();
            for (i, genes) in batch.iter().enumerate() {
                session.submit(genes);
                // Drain in ragged quanta while submissions continue.
                if i % 3 == 2 {
                    got.extend(session.drain(2).unwrap());
                }
            }
            got.extend(session.drain_all().unwrap());
            got
        });
        assert_eq!(got, expect);
        assert_eq!(engine.stats().candidates, one_shot.stats().candidates);
        assert_eq!(engine.stats().evaluations, one_shot.stats().evaluations);
        assert_eq!(engine.stats().cache_hits, one_shot.stats().cache_hits);
    }

    #[test]
    fn drain_order_is_submission_order_across_worker_counts() {
        let batch: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64 * 0.3]).collect();
        let mut reference: Option<Vec<f64>> = None;
        for kind in [
            EvaluatorKind::Serial,
            EvaluatorKind::ParallelWith(2),
            EvaluatorKind::ParallelWith(4),
        ] {
            let mut engine: ExecutionEngine<f64> =
                ExecutionEngine::new(EngineConfig::default().evaluator(kind));
            let out = engine.with_session(&scalar, &kernel, |session| {
                for genes in &batch {
                    session.submit(genes);
                }
                let mut out = session.drain(10).unwrap();
                out.extend(session.drain_all().unwrap());
                out
            });
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(&out, r, "worker count changed the merge order"),
            }
        }
    }

    #[test]
    fn aliases_resolve_across_drain_boundaries() {
        let calls = AtomicU64::new(0);
        let eval = |genes: &[f64]| {
            calls.fetch_add(1, Ordering::SeqCst);
            genes[0] * 2.0
        };
        let k = |chunk: &[Vec<f64>]| chunk.iter().map(|g| eval(g)).collect::<Vec<f64>>();
        let mut engine: ExecutionEngine<f64> =
            ExecutionEngine::new(EngineConfig::default().cache_capacity(16));
        let out = engine.with_session(&eval, &k, |session| {
            session.submit(&[1.0]); // miss
            let first = session.drain_all().unwrap();
            session.submit(&[1.0]); // cache hit
            session.submit(&[2.0]); // miss
            session.submit(&[2.0]); // alias of the pending miss
            let rest = session.drain_all().unwrap();
            (first, rest)
        });
        assert_eq!(out.0, vec![2.0]);
        assert_eq!(out.1, vec![2.0, 4.0, 4.0]);
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        assert_eq!(engine.stats().cache_hits, 2);
        let s = engine.stats();
        assert_eq!(s.candidates, s.evaluations + s.cache_hits + s.screened);
    }

    #[test]
    fn screened_submissions_alias_and_never_cache() {
        let mut engine: ExecutionEngine<f64> =
            ExecutionEngine::new(EngineConfig::default().cache_capacity(16));
        engine.attach_screen(SurrogateScreen::new("negatives", |g: &[f64]| {
            (g[0] < 0.0).then_some(-999.0)
        }));
        let out = engine.with_session(&scalar, &kernel, |session| {
            session.submit(&[-1.0]); // screened miss
            session.submit(&[-1.0]); // aliases the screened submission
            session.submit(&[2.0]);
            session.drain_all().unwrap()
        });
        assert_eq!(out[0], -999.0);
        assert_eq!(out[1], -999.0);
        let s = engine.stats();
        assert_eq!(s.screened, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.evaluations, 1);
        assert_eq!(s.candidates, s.evaluations + s.cache_hits + s.screened);
        // A fresh session re-screens: the placeholder was never cached.
        let out2 = engine.with_session(&scalar, &kernel, |session| {
            session.submit(&[-1.0]);
            session.drain_all().unwrap()
        });
        assert_eq!(out2, vec![-999.0]);
        assert_eq!(engine.stats().screened, 2);
    }

    #[test]
    fn primed_completions_replay_without_stats() {
        let mut engine: ExecutionEngine<f64> = ExecutionEngine::new(EngineConfig::default());
        let out = engine.with_session(&scalar, &kernel, |session| {
            session.prime(41.5);
            session.prime(7.0);
            session.submit(&[1.0]);
            session.drain_all().unwrap()
        });
        assert_eq!(out, vec![41.5, 7.0, scalar(&[1.0])]);
        assert_eq!(engine.stats().candidates, 1);
        assert_eq!(engine.stats().evaluations, 1);
    }

    #[test]
    fn fault_accounting_folds_in_submission_order_under_workers() {
        let plan = FaultPlan::seeded(13).panics(0.2).nonfinite(0.2);
        let base = EngineConfig::default()
            .fault_policy(FaultPolicy::tolerant(3))
            .inject_faults(plan);
        let batch: Vec<Vec<f64>> = (0..48).map(|i| vec![i as f64]).collect();
        let run = |cfg: EngineConfig| {
            let mut engine: ExecutionEngine<f64> = ExecutionEngine::new(cfg);
            let eval = |g: &[f64]| g[0] * 2.0;
            let k = |chunk: &[Vec<f64>]| chunk.iter().map(|g| g[0] * 2.0).collect::<Vec<f64>>();
            let out = engine.with_session(&eval, &k, |session| {
                for genes in &batch {
                    session.submit(genes);
                }
                let mut out = session.drain(7).unwrap();
                out.extend(session.drain_all().unwrap());
                out
            });
            let events = engine.take_fault_events();
            (out, engine.into_stats(), events)
        };
        let (serial_out, serial_stats, serial_events) = run(base.clone());
        let (par_out, par_stats, par_events) = run(base.evaluator(EvaluatorKind::ParallelWith(4)));
        assert_eq!(serial_out, par_out);
        assert_eq!(serial_events, par_events);
        assert!(serial_stats.failures > 0);
        assert_eq!(serial_stats.failures, par_stats.failures);
        assert_eq!(serial_stats.recovered, par_stats.recovered);
        assert_eq!(serial_stats.retries, par_stats.retries);
    }

    #[test]
    fn drain_failure_reports_submission_index() {
        let plan = FaultPlan::seeded(1).panics(1.0);
        let mut engine: ExecutionEngine<f64> =
            ExecutionEngine::new(EngineConfig::default().inject_faults(plan));
        let eval = |g: &[f64]| g[0];
        let k = |chunk: &[Vec<f64>]| chunk.iter().map(|g| g[0]).collect::<Vec<f64>>();
        let err = engine.with_session(&eval, &k, |session| {
            session.submit(&[0.5]);
            session.submit(&[0.7]);
            session.drain_all().unwrap_err()
        });
        assert_eq!(err.index, 0);
    }

    #[test]
    fn undrained_submissions_are_abandoned_cleanly() {
        let mut engine: ExecutionEngine<f64> =
            ExecutionEngine::new(EngineConfig::default().evaluator(EvaluatorKind::ParallelWith(4)));
        let drained = engine.with_session(&scalar, &kernel, |session| {
            for i in 0..16 {
                session.submit(&[i as f64]);
            }
            session.drain(4).unwrap()
        });
        // The 12 undrained submissions are discarded at session teardown
        // without hanging the pool.
        assert_eq!(drained.len(), 4);
        assert_eq!(engine.stats().candidates, 16);
    }
}
