//! A thread-safe memoization cache shared by many concurrent runs.
//!
//! The per-run [`MemoCache`](crate::MemoCache) sits inside one
//! [`ExecutionEngine`](crate::ExecutionEngine) and dies with it. A
//! campaign that executes a seed × algorithm matrix over *one* problem
//! evaluates many near-identical candidate streams; promoting the cache
//! to a [`SharedCache`] lets every cell of the matrix reuse every other
//! cell's evaluations.
//!
//! Correctness contract: the evaluation closure must be a **pure
//! function of the gene vector**. Under that contract a cache hit
//! returns exactly the value the run would have computed itself, so a
//! run's results are bit-identical whether its candidates are answered
//! by the model, by its own earlier insertions, or by another run's —
//! only the *counters* (hits vs. evaluations) depend on scheduling.
//!
//! Hit accounting is deterministic **per run**: each
//! [`ExecutionEngine`](crate::ExecutionEngine) counts the hits its own
//! lookups observe in its private [`EngineStats`](crate::EngineStats),
//! with no cross-run interference. The cache additionally keeps global
//! totals ([`SharedCacheStats`]) across all handles; those totals are
//! exact but — like any contended counter — their split across runs
//! varies with thread interleaving.

use crate::cache::{CacheConfig, MemoCache};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Global counters of a [`SharedCache`], summed over every handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SharedCacheStats {
    /// Lookups answered from the shared store.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Values stored.
    pub inserts: u64,
}

impl SharedCacheStats {
    /// Fraction of lookups answered from the store (`0.0` when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Store<T> {
    cache: Mutex<MemoCache<T>>,
    config: CacheConfig,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
}

/// A cloneable handle to a memoization cache shared across threads and
/// runs. Cloning is cheap (an [`Arc`] bump); all clones address the same
/// store. Equality is identity: two handles are equal iff they share a
/// store.
pub struct SharedCache<T> {
    store: Arc<Store<T>>,
}

impl<T> Clone for SharedCache<T> {
    fn clone(&self) -> Self {
        SharedCache {
            store: Arc::clone(&self.store),
        }
    }
}

impl<T> PartialEq for SharedCache<T> {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.store, &other.store)
    }
}

impl<T> std::fmt::Debug for SharedCache<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedCache")
            .field("config", &self.store.config)
            .field("stats", &self.stats())
            .finish()
    }
}

impl<T> SharedCache<T> {
    /// The configuration the cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.store.config
    }

    /// Maps a gene vector onto its quantized cache key (lock-free; the
    /// grid is immutable).
    pub fn key_of(&self, genes: &[f64]) -> Vec<i64> {
        genes
            .iter()
            .map(|&x| (x / self.store.config.grid).round() as i64)
            .collect()
    }

    /// A snapshot of the global counters across all handles.
    pub fn stats(&self) -> SharedCacheStats {
        SharedCacheStats {
            hits: self.store.hits.load(Ordering::Relaxed),
            misses: self.store.misses.load(Ordering::Relaxed),
            inserts: self.store.inserts.load(Ordering::Relaxed),
        }
    }
}

impl<T: Clone> SharedCache<T> {
    /// An empty shared cache with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics when `config.capacity == 0` — a shared cache that can
    /// never store anything is a configuration error, not a useful
    /// degenerate case (use no cache at all instead).
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.capacity > 0, "shared cache capacity must be > 0");
        SharedCache {
            store: Arc::new(Store {
                cache: Mutex::new(MemoCache::new(config.clone())),
                config,
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                inserts: AtomicU64::new(0),
            }),
        }
    }

    /// A shared cache holding at most `capacity` entries at the default
    /// quantization grid.
    pub fn with_capacity(capacity: usize) -> Self {
        SharedCache::new(CacheConfig::with_capacity(capacity))
    }

    /// Looks up a previously stored result, refreshing its recency.
    pub fn get(&self, key: &[i64]) -> Option<T> {
        let hit = self
            .store
            .cache
            .lock()
            .expect("shared cache poisoned")
            .get(key);
        match &hit {
            Some(_) => self.store.hits.fetch_add(1, Ordering::Relaxed),
            None => self.store.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Stores a result, evicting the least recently used entry when
    /// full.
    pub fn insert(&self, key: Vec<i64>, value: T) {
        self.store
            .cache
            .lock()
            .expect("shared cache poisoned")
            .insert(key, value);
        self.store.inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.store
            .cache
            .lock()
            .expect("shared cache poisoned")
            .len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_one_store() {
        let a: SharedCache<u32> = SharedCache::with_capacity(8);
        let b = a.clone();
        let k = a.key_of(&[1.0, 2.0]);
        a.insert(k.clone(), 7);
        assert_eq!(b.get(&k), Some(7));
        assert_eq!(a.len(), 1);
        assert_eq!(a, b);
        assert_ne!(a, SharedCache::with_capacity(8));
    }

    #[test]
    fn counters_track_hits_misses_inserts() {
        let c: SharedCache<u32> = SharedCache::with_capacity(4);
        let k = c.key_of(&[0.5]);
        assert!(c.get(&k).is_none());
        c.insert(k.clone(), 1);
        assert_eq!(c.get(&k), Some(1));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn concurrent_handles_stay_consistent() {
        let cache: SharedCache<u64> = SharedCache::with_capacity(1024);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let handle = cache.clone();
                scope.spawn(move || {
                    for i in 0..256u64 {
                        let key = handle.key_of(&[(i % 64) as f64]);
                        if handle.get(&key).is_none() {
                            handle.insert(key, t * 1000 + i);
                        }
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 4 * 256);
        assert!(cache.len() <= 64);
    }

    #[test]
    #[should_panic(expected = "capacity must be > 0")]
    fn rejects_zero_capacity() {
        let _: SharedCache<u32> = SharedCache::with_capacity(0);
    }
}
