#![warn(missing_docs)]
//! Batched candidate evaluation for the genetic optimizers.
//!
//! Every run loop in this workspace — NSGA-II, SACGA, MESACGA, the
//! local-competition GA and the island model — ultimately does the same
//! thing: produce a batch of candidate gene vectors, evaluate each one
//! against a (potentially expensive) circuit model, and feed the results
//! back into selection. This crate owns that evaluation step end-to-end:
//!
//! * [`Evaluator`] — the fan-out strategy. [`SerialEvaluator`] evaluates
//!   in a plain loop; [`ParallelEvaluator`] spreads a batch across scoped
//!   OS threads while preserving input order, so a seeded run produces
//!   bit-for-bit identical results under either evaluator.
//! * [`MemoCache`] — an LRU memoization cache keyed by gene vectors
//!   quantized to a configurable grid, so re-visited (or near-identical)
//!   candidates skip the expensive model call. [`SharedCache`] promotes
//!   the same store behind a thread-safe, cloneable handle so many
//!   concurrent runs (a campaign) can pool their evaluations; per-run
//!   hit counts stay in each engine's own [`EngineStats`].
//! * [`EngineStats`] — per-run instrumentation: candidates seen, model
//!   evaluations actually performed, cache hits, batch counts and sizes,
//!   and wall-clock time spent inside evaluation.
//! * [`ExecutionEngine`] — ties the three together behind one
//!   [`evaluate_batch`](ExecutionEngine::evaluate_batch) call, configured
//!   by an [`EngineConfig`]. Problems with a struct-of-arrays fast path
//!   hand a batch kernel to
//!   [`evaluate_batch_with`](ExecutionEngine::evaluate_batch_with) /
//!   [`try_evaluate_batch_with`](ExecutionEngine::try_evaluate_batch_with),
//!   which must be bit-identical to the scalar closure; an opt-in
//!   [`SurrogateScreen`] can answer obvious losers before the full model
//!   runs (counted in [`EngineStats::screened`], never cached), and a
//!   cache canonicalizer
//!   ([`set_cache_canonicalizer`](ExecutionEngine::set_cache_canonicalizer))
//!   lets problems that decode genes through a coarse discretization
//!   share cache entries across equivalent raw gene vectors.
//! * [`EvaluationSession`] — the incremental submission/completion view
//!   of the same machinery ([`with_session`](ExecutionEngine::with_session)):
//!   candidates are submitted as selection produces them, evaluate out of
//!   order on a worker pool, and drain back in deterministic submission
//!   order — the engine API behind steady-state (asynchronous)
//!   evolution. The one-shot batch calls are thin submit-all/drain-all
//!   wrappers over it.
//! * The fault layer — [`FaultPolicy`]/[`RetryPolicy`] contain evaluator
//!   panics, retry within a bounded deterministic budget, and quarantine
//!   non-finite results ([`Quarantine`]); per-candidate verdicts
//!   ([`EvalOutcome`]) surface through
//!   [`try_evaluate_batch`](ExecutionEngine::try_evaluate_batch) as
//!   values or typed [`EvalFailure`]s, with failure/retry/recovery
//!   counters in [`EngineStats`]. [`FaultInjector`] and
//!   [`FaultInjectingEvaluator`] inject panics, NaN results, and
//!   artificial latency on a seeded reproducible schedule
//!   ([`FaultPlan`]) — the test harness for the whole layer.
//!
//! The crate is deliberately dependency-free and generic over the
//! evaluation closure (`Fn(&[f64]) -> T`), so it sits below the `moea`
//! crate in the dependency graph and knows nothing about `Problem` or
//! `Evaluation` types.
//!
//! # Example
//!
//! ```
//! use engine::{EngineConfig, EvaluatorKind, ExecutionEngine};
//!
//! let config = EngineConfig::default()
//!     .evaluator(EvaluatorKind::Parallel)
//!     .cache_capacity(1024);
//! let mut engine: ExecutionEngine<f64> = ExecutionEngine::new(config);
//!
//! let batch: Vec<Vec<f64>> = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![1.0, 2.0]];
//! let out = engine.evaluate_batch(&batch, &|genes: &[f64]| genes.iter().sum::<f64>());
//!
//! assert_eq!(out, vec![3.0, 7.0, 3.0]);
//! // The duplicate candidate was served from the cache:
//! assert_eq!(engine.stats().candidates, 3);
//! assert_eq!(engine.stats().evaluations, 2);
//! assert_eq!(engine.stats().cache_hits, 1);
//! ```

mod cache;
mod engine;
mod evaluator;
mod fault;
pub mod metrics;
pub mod pool;
mod screen;
pub mod session;
mod shared;
mod stats;
mod timing;

pub use cache::{CacheConfig, MemoCache};
pub use engine::{CacheCanonicalizer, EngineConfig, ExecutionEngine};
pub use evaluator::{Evaluator, EvaluatorKind, ParallelEvaluator, SerialEvaluator};
pub use fault::{
    silence_injected_panics, EvalFailure, EvalOutcome, ExhaustedAction, FaultEvent,
    FaultInjectingEvaluator, FaultInjector, FaultKind, FaultPlan, FaultPolicy, FaultResolution,
    InjectedPanic, InjectionCounts, Quarantine, RetryPolicy,
};
pub use metrics::{
    CellMetrics, CellSeries, Counter, EngineMetrics, Gauge, Histogram, MetricsRegistry, PoolMetrics,
};
pub use screen::SurrogateScreen;
pub use session::EvaluationSession;
pub use shared::{SharedCache, SharedCacheStats};
pub use stats::EngineStats;
pub use timing::{Stage, StageNanos, StageTimer};
