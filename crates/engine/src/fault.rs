//! Fault tolerance: panic containment, bounded retry, quarantine of
//! non-finite results, and deterministic fault injection.
//!
//! Real analog-evaluation backends (SPICE farms, surrogate servers) fail
//! in three characteristic ways: they crash (a panic in-process), they
//! return garbage (NaN/infinite objectives), and they stall (latency
//! spikes). This module models all three:
//!
//! * [`FaultPolicy`] + [`RetryPolicy`] decide what happens when a single
//!   candidate evaluation fails: panics are contained with
//!   [`std::panic::catch_unwind`], the attempt is retried up to a bounded
//!   budget with deterministic exponential-backoff *accounting* (the
//!   backoff that a production deployment would sleep is accumulated into
//!   stats rather than actually slept, so seeded runs stay bit-identical
//!   and tests stay fast), and persistently non-finite results are
//!   replaced by a worst-case [`Quarantine`] placeholder that cannot
//!   dominate any genuine candidate.
//! * [`EvalOutcome`] is the per-candidate verdict the policy produces;
//!   the [`ExecutionEngine`](crate::ExecutionEngine) folds outcomes into
//!   [`EngineStats`](crate::EngineStats) counters in input order, so the
//!   counters are identical under serial and parallel evaluation.
//! * [`FaultInjector`] / [`FaultInjectingEvaluator`] inject panics,
//!   non-finite results, and artificial latency on a seeded, reproducible
//!   schedule keyed on the candidate's gene bits — the primary test
//!   harness for the whole layer.

use crate::evaluator::Evaluator;
use std::collections::HashMap;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, Once};
use std::time::Duration;

/// The way a single evaluation attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The evaluation closure panicked.
    Panic,
    /// The evaluation produced a non-finite (tainted) result while the
    /// policy quarantines non-finite results.
    NonFinite,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Panic => write!(f, "panic"),
            FaultKind::NonFinite => write!(f, "non-finite result"),
        }
    }
}

/// Bounded retry budget with deterministic exponential backoff.
///
/// The backoff after the `k`-th consecutive failure is
/// `backoff_base * 2^(k-1)`, capped at `backoff_cap`. It is **accounted**
/// (summed into [`EngineStats::backoff_time`](crate::EngineStats)) rather
/// than slept: sleeping would not change any optimizer decision, but it
/// would make wall-clock nondeterministic and tests slow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts allowed per candidate, including the first
    /// (values below 1 behave as 1).
    pub max_attempts: u32,
    /// Backoff after the first failure; doubles per further failure.
    pub backoff_base: Duration,
    /// Upper bound on a single backoff step.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::from_secs(60),
        }
    }
}

impl RetryPolicy {
    /// A policy allowing `max_attempts` total attempts and no backoff.
    pub fn with_max_attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            ..RetryPolicy::default()
        }
    }

    /// Sets the base backoff (after the first failure).
    pub fn backoff_base(mut self, base: Duration) -> Self {
        self.backoff_base = base;
        self
    }

    /// Sets the per-step backoff cap.
    pub fn backoff_cap(mut self, cap: Duration) -> Self {
        self.backoff_cap = cap;
        self
    }

    /// The deterministic backoff charged after the `failure`-th
    /// consecutive failure (1-based).
    pub fn backoff_after(&self, failure: u32) -> Duration {
        let exp = failure.saturating_sub(1).min(31);
        self.backoff_base
            .saturating_mul(1u32 << exp)
            .min(self.backoff_cap)
    }
}

/// What to do with a candidate whose retry budget is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExhaustedAction {
    /// Fail the whole batch with a typed error (the default — matches
    /// the strictness of the pre-fault-layer engine, minus the abort).
    #[default]
    Abort,
    /// Replace the candidate's result with its worst-case
    /// [`Quarantine`] placeholder and continue the run. Only possible
    /// when at least one attempt produced a (tainted) value; a candidate
    /// that panicked on every attempt still aborts, because there is no
    /// value to derive a placeholder from.
    Quarantine,
}

/// Full fault-handling policy of an engine: retry budget, non-finite
/// quarantine, and the action taken when the budget runs out.
///
/// The default policy (one attempt, no quarantine, abort) reproduces the
/// historical engine behavior except that evaluator panics surface as
/// typed [`EvalFailure`]s instead of unwinding through the run loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPolicy {
    /// Per-candidate retry budget.
    pub retry: RetryPolicy,
    /// Treat non-finite results as failures (retry, then quarantine or
    /// abort) instead of passing them through.
    pub quarantine_nonfinite: bool,
    /// Action when the retry budget is exhausted.
    pub on_exhausted: ExhaustedAction,
}

impl FaultPolicy {
    /// A forgiving preset: `max_attempts` tries per candidate,
    /// non-finite results treated as failures, and quarantine (not
    /// abort) when the budget runs out.
    pub fn tolerant(max_attempts: u32) -> Self {
        FaultPolicy {
            retry: RetryPolicy::with_max_attempts(max_attempts),
            quarantine_nonfinite: true,
            on_exhausted: ExhaustedAction::Quarantine,
        }
    }

    /// Sets the retry budget.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Shorthand for setting only the attempt count of the retry budget.
    pub fn max_attempts(mut self, max_attempts: u32) -> Self {
        self.retry.max_attempts = max_attempts;
        self
    }

    /// Enables or disables non-finite quarantine.
    pub fn quarantine_nonfinite(mut self, on: bool) -> Self {
        self.quarantine_nonfinite = on;
        self
    }

    /// Sets the exhausted-budget action.
    pub fn on_exhausted(mut self, action: ExhaustedAction) -> Self {
        self.on_exhausted = action;
        self
    }

    /// Evaluates one candidate under this policy: contains panics,
    /// retries within budget, and classifies the result.
    ///
    /// Deterministic given a deterministic `eval`: the outcome depends
    /// only on the sequence of attempt results, never on wall-clock or
    /// thread scheduling.
    pub fn execute<T, F>(&self, eval: &F, genes: &[f64]) -> EvalOutcome<T>
    where
        T: Quarantine,
        F: Fn(&[f64]) -> T,
    {
        let max_attempts = self.retry.max_attempts.max(1);
        let mut failures = 0u32;
        let mut backoff = Duration::ZERO;
        let mut last_tainted: Option<T> = None;
        let mut last_kind = FaultKind::Panic;
        let mut last_message = String::new();

        for attempt in 1..=max_attempts {
            match panic::catch_unwind(AssertUnwindSafe(|| eval(genes))) {
                Ok(value) => {
                    if self.quarantine_nonfinite && value.is_tainted() {
                        failures += 1;
                        last_kind = FaultKind::NonFinite;
                        last_message = "evaluation produced a non-finite result".to_string();
                        last_tainted = Some(value);
                    } else if failures == 0 {
                        return EvalOutcome::Ok(value);
                    } else {
                        return EvalOutcome::Recovered {
                            value,
                            failures,
                            backoff,
                            kind: last_kind,
                        };
                    }
                }
                Err(payload) => {
                    failures += 1;
                    last_kind = FaultKind::Panic;
                    last_message = panic_message(payload.as_ref());
                }
            }
            if attempt < max_attempts {
                backoff += self.retry.backoff_after(failures);
            }
        }

        if self.on_exhausted == ExhaustedAction::Quarantine {
            if let Some(tainted) = last_tainted {
                return EvalOutcome::Quarantined {
                    value: tainted.quarantine(),
                    failures,
                    backoff,
                    kind: last_kind,
                };
            }
        }
        EvalOutcome::Failed(EvalFailure {
            index: 0,
            attempts: failures,
            kind: last_kind,
            message: last_message,
            backoff,
        })
    }
}

/// Extracts a readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(injected) = payload.downcast_ref::<InjectedPanic>() {
        injected.message.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Per-candidate verdict of a [`FaultPolicy`] evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalOutcome<T> {
    /// Succeeded on the first attempt.
    Ok(T),
    /// Succeeded after one or more failed attempts.
    Recovered {
        /// The successful result.
        value: T,
        /// Failed attempts that preceded the success.
        failures: u32,
        /// Deterministic backoff accounted across the retries.
        backoff: Duration,
        /// How the last failed attempt failed.
        kind: FaultKind,
    },
    /// The retry budget ran out with only tainted values; the result is
    /// a worst-case placeholder that cannot dominate genuine candidates.
    Quarantined {
        /// The quarantine placeholder.
        value: T,
        /// Failed attempts (equals the attempt budget).
        failures: u32,
        /// Deterministic backoff accounted across the retries.
        backoff: Duration,
        /// How the last failed attempt failed.
        kind: FaultKind,
    },
    /// The retry budget ran out and the policy aborts.
    Failed(
        /// The typed failure to surface to the caller.
        EvalFailure,
    ),
}

impl<T> EvalOutcome<T> {
    /// Re-attempts performed after a failure (0 for [`EvalOutcome::Ok`]).
    pub fn retries(&self) -> u32 {
        match self {
            EvalOutcome::Ok(_) => 0,
            EvalOutcome::Recovered { failures, .. } => *failures,
            EvalOutcome::Quarantined { failures, .. } => failures.saturating_sub(1),
            EvalOutcome::Failed(f) => f.attempts.saturating_sub(1),
        }
    }
}

/// How a non-fatal fault was resolved by the [`FaultPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultResolution {
    /// A later attempt succeeded within the retry budget.
    Recovered,
    /// The retry budget ran out and the candidate was replaced by its
    /// worst-case [`Quarantine`] placeholder.
    Quarantined,
}

impl fmt::Display for FaultResolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultResolution::Recovered => write!(f, "recovered"),
            FaultResolution::Quarantined => write!(f, "quarantined"),
        }
    }
}

/// One fault-handling episode observed by the
/// [`ExecutionEngine`](crate::ExecutionEngine): a candidate whose
/// evaluation failed at least once but was ultimately resolved (fatal
/// failures surface as [`EvalFailure`] errors instead).
///
/// Events are buffered in batch order and drained with
/// [`ExecutionEngine::take_fault_events`](crate::ExecutionEngine::take_fault_events),
/// which run loops forward into their telemetry streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Position of the candidate in the submitted batch.
    pub index: usize,
    /// How the evaluation attempts failed.
    pub kind: FaultKind,
    /// Failed attempts before resolution.
    pub failures: u32,
    /// How the episode ended.
    pub resolution: FaultResolution,
}

/// A candidate evaluation that failed after exhausting its retry budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalFailure {
    /// Position of the failing candidate in the submitted batch.
    pub index: usize,
    /// Attempts performed (all of which failed).
    pub attempts: u32,
    /// How the final attempt failed.
    pub kind: FaultKind,
    /// Human-readable detail (panic message or taint description).
    pub message: String,
    /// Deterministic backoff accounted across the retries.
    pub backoff: Duration,
}

impl fmt::Display for EvalFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "candidate {} failed after {} attempt(s) ({}): {}",
            self.index, self.attempts, self.kind, self.message
        )
    }
}

impl std::error::Error for EvalFailure {}

/// Types that can detect and stand in for corrupted evaluation results.
///
/// Implemented by result types flowing through
/// [`ExecutionEngine::try_evaluate_batch`](crate::ExecutionEngine::try_evaluate_batch):
/// `is_tainted` detects non-finite garbage, `quarantine` derives a
/// same-shaped worst-case placeholder from it, and `corrupt` produces the
/// garbage itself (used only by fault injection).
pub trait Quarantine {
    /// Whether this value contains non-finite components that would
    /// poison selection if trusted.
    fn is_tainted(&self) -> bool;

    /// A same-shaped worst-case placeholder: every component is as bad
    /// as the type can express, so the value cannot dominate any genuine
    /// candidate.
    fn quarantine(&self) -> Self;

    /// A same-shaped non-finite variant of this value, as a faulty
    /// backend would return. Used by [`FaultInjector`] to fabricate
    /// garbage results deterministically.
    fn corrupt(&self) -> Self;
}

impl Quarantine for f64 {
    fn is_tainted(&self) -> bool {
        !self.is_finite()
    }

    fn quarantine(&self) -> Self {
        f64::INFINITY
    }

    fn corrupt(&self) -> Self {
        f64::NAN
    }
}

/// Panic payload used by [`FaultInjector`]; the process-wide panic hook
/// installed by [`silence_injected_panics`] suppresses the default
/// "thread panicked" noise for this payload type only.
#[derive(Debug, Clone)]
pub struct InjectedPanic {
    /// Description of the injected fault.
    pub message: String,
}

static QUIET_HOOK: Once = Once::new();

/// Installs (once per process) a panic hook that stays silent for
/// [`InjectedPanic`] payloads and delegates everything else to the
/// previous hook. Called automatically by [`FaultInjector::new`], so
/// injected panics do not spam test output while genuine panics keep
/// their backtraces.
pub fn silence_injected_panics() {
    QUIET_HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

/// Seeded, reproducible fault schedule.
///
/// Each candidate is assigned a fault (or none) by hashing its gene bits
/// with `seed`, so the schedule is a pure function of the candidate —
/// independent of evaluation order, thread interleaving, and caching.
/// The rates partition the unit interval: a candidate whose hash lands in
/// `[0, panic_rate)` panics, `[panic_rate, panic_rate+nonfinite_rate)`
/// returns non-finite garbage, and the next `latency_rate`-wide span is
/// delayed by `latency`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the injection schedule.
    pub seed: u64,
    /// Fraction of candidates whose evaluation panics.
    pub panic_rate: f64,
    /// Fraction of candidates whose evaluation returns non-finite
    /// garbage.
    pub nonfinite_rate: f64,
    /// Fraction of candidates whose evaluation is artificially delayed.
    pub latency_rate: f64,
    /// The artificial delay applied to latency-scheduled candidates.
    pub latency: Duration,
    /// Consecutive failing calls per scheduled candidate before it
    /// evaluates cleanly — keep below the policy's `max_attempts` for a
    /// run that recovers everywhere.
    pub faults_per_candidate: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            panic_rate: 0.0,
            nonfinite_rate: 0.0,
            latency_rate: 0.0,
            latency: Duration::ZERO,
            faults_per_candidate: 1,
        }
    }
}

impl FaultPlan {
    /// A plan with the given schedule seed and no faults.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Sets the fraction of candidates that panic.
    pub fn panics(mut self, rate: f64) -> Self {
        self.panic_rate = rate;
        self
    }

    /// Sets the fraction of candidates that return non-finite garbage.
    pub fn nonfinite(mut self, rate: f64) -> Self {
        self.nonfinite_rate = rate;
        self
    }

    /// Sets the fraction of candidates that are delayed, and the delay.
    pub fn latency(mut self, rate: f64, delay: Duration) -> Self {
        self.latency_rate = rate;
        self.latency = delay;
        self
    }

    /// Sets how many consecutive calls fail per scheduled candidate.
    pub fn faults_per_candidate(mut self, n: u32) -> Self {
        self.faults_per_candidate = n;
        self
    }
}

/// SplitMix64 finalizer: decorrelates the gene-bit hash.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What the plan schedules for one candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InjectedFault {
    Panic,
    NonFinite,
    Latency,
}

/// Totals of faults a [`FaultInjector`] has injected so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InjectionCounts {
    /// Panics injected.
    pub panics: u64,
    /// Non-finite results injected.
    pub nonfinite: u64,
    /// Artificial delays injected.
    pub delays: u64,
}

impl InjectionCounts {
    /// Total injected *failures* (panics + non-finite results; delays
    /// slow evaluation down but do not fail it).
    pub fn failures(&self) -> u64 {
        self.panics + self.nonfinite
    }
}

/// Deterministic fault injector driven by a [`FaultPlan`].
///
/// Thread-safe: the per-candidate call counters live behind a mutex and
/// the injection totals are atomics, so the injector can sit inside the
/// `Sync` closure a [`ParallelEvaluator`](crate::ParallelEvaluator) fans
/// out. For a scheduled candidate, the first
/// [`faults_per_candidate`](FaultPlan::faults_per_candidate) calls fail
/// and later calls succeed — which is exactly the transient-fault shape a
/// bounded [`RetryPolicy`] recovers from, making a fault-injected run
/// reproduce the fault-free front at the same optimizer seed.
///
/// The per-candidate counters grow with the number of distinct candidates
/// seen; the injector is a test harness, not a production component.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    calls: Mutex<HashMap<Vec<u64>, u32>>,
    panics: AtomicU64,
    nonfinite: AtomicU64,
    delays: AtomicU64,
}

impl FaultInjector {
    /// Builds an injector for `plan` (and silences the default panic
    /// hook for injected panics).
    pub fn new(plan: FaultPlan) -> Self {
        silence_injected_panics();
        FaultInjector {
            plan,
            calls: Mutex::new(HashMap::new()),
            panics: AtomicU64::new(0),
            nonfinite: AtomicU64::new(0),
            delays: AtomicU64::new(0),
        }
    }

    /// The plan driving this injector.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Totals of the faults injected so far.
    pub fn counts(&self) -> InjectionCounts {
        InjectionCounts {
            panics: self.panics.load(Ordering::SeqCst),
            nonfinite: self.nonfinite.load(Ordering::SeqCst),
            delays: self.delays.load(Ordering::SeqCst),
        }
    }

    /// The fault (if any) the plan schedules for `genes` — a pure
    /// function of the gene bits and the plan seed.
    fn decide(&self, genes: &[f64]) -> Option<InjectedFault> {
        let mut h = mix64(self.plan.seed);
        for g in genes {
            h = mix64(h ^ g.to_bits());
        }
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.plan.panic_rate {
            Some(InjectedFault::Panic)
        } else if u < self.plan.panic_rate + self.plan.nonfinite_rate {
            Some(InjectedFault::NonFinite)
        } else if u < self.plan.panic_rate + self.plan.nonfinite_rate + self.plan.latency_rate {
            Some(InjectedFault::Latency)
        } else {
            None
        }
    }

    /// `true` when the plan schedules *any* fault for `genes`.
    ///
    /// Like the internal fault decision, this is a pure function of
    /// the gene bits and the plan seed: it never touches the
    /// per-candidate call counters, so probing a candidate here and then
    /// routing it around the injected invocation path (the batch
    /// fast path does this for unscheduled candidates) leaves the
    /// injector in exactly the state a plain scalar sweep produces —
    /// `invoke` itself only bumps counters for scheduled candidates.
    pub fn schedules_fault(&self, genes: &[f64]) -> bool {
        self.decide(genes).is_some()
    }

    /// Returns the number of previous calls recorded for this candidate
    /// and increments the counter.
    fn bump(&self, genes: &[f64]) -> u32 {
        let key: Vec<u64> = genes.iter().map(|g| g.to_bits()).collect();
        let mut calls = self.calls.lock().expect("injector counter lock");
        let n = calls.entry(key).or_insert(0);
        let previous = *n;
        *n += 1;
        previous
    }

    /// Evaluates `genes` through `eval`, injecting the scheduled fault.
    ///
    /// Panic injection raises an [`InjectedPanic`]; non-finite injection
    /// evaluates the candidate and corrupts the result (via
    /// [`Quarantine::corrupt`]); latency injection sleeps for the
    /// configured delay before evaluating.
    pub fn invoke<T, F>(&self, eval: &F, genes: &[f64]) -> T
    where
        T: Quarantine,
        F: Fn(&[f64]) -> T,
    {
        match self.decide(genes) {
            Some(InjectedFault::Panic) => {
                if self.bump(genes) < self.plan.faults_per_candidate {
                    self.panics.fetch_add(1, Ordering::SeqCst);
                    panic::panic_any(InjectedPanic {
                        message: "injected panic".to_string(),
                    });
                }
                eval(genes)
            }
            Some(InjectedFault::NonFinite) => {
                if self.bump(genes) < self.plan.faults_per_candidate {
                    self.nonfinite.fetch_add(1, Ordering::SeqCst);
                    eval(genes).corrupt()
                } else {
                    eval(genes)
                }
            }
            Some(InjectedFault::Latency) => {
                if self.bump(genes) < self.plan.faults_per_candidate {
                    self.delays.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(self.plan.latency);
                }
                eval(genes)
            }
            None => eval(genes),
        }
    }
}

/// An [`Evaluator`] wrapper that injects faults into every evaluation it
/// fans out.
///
/// This is the standalone harness form of [`FaultInjector`]: wrap any
/// evaluator, and each candidate passes through the injector before the
/// real evaluation closure. Note that an injected panic propagates out of
/// `eval_batch` unless something above catches it — pair the wrapper with
/// a [`FaultPolicy`] (as
/// [`ExecutionEngine::try_evaluate_batch`](crate::ExecutionEngine::try_evaluate_batch)
/// does) to exercise recovery.
#[derive(Debug)]
pub struct FaultInjectingEvaluator<E> {
    inner: E,
    injector: FaultInjector,
}

impl<E: Evaluator + Sync> FaultInjectingEvaluator<E> {
    /// Wraps `inner` with the fault schedule of `plan`.
    pub fn new(inner: E, plan: FaultPlan) -> Self {
        FaultInjectingEvaluator {
            inner,
            injector: FaultInjector::new(plan),
        }
    }

    /// The injector, for inspecting injection totals.
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// Unwraps the inner evaluator.
    pub fn into_inner(self) -> E {
        self.inner
    }

    /// A short human-readable name for logs and stats.
    pub fn label(&self) -> &'static str {
        "fault-injecting"
    }

    /// Evaluates every gene vector in `batch` through the inner
    /// evaluator with faults injected, returning results in input order.
    pub fn eval_batch<T, F>(&self, eval: &F, batch: &[Vec<f64>]) -> Vec<T>
    where
        T: Send + Quarantine,
        F: Fn(&[f64]) -> T + Sync,
    {
        let injected = |genes: &[f64]| self.injector.invoke(eval, genes);
        self.inner.eval_batch(&injected, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{ParallelEvaluator, SerialEvaluator};
    use std::sync::atomic::AtomicU32;

    #[test]
    fn backoff_doubles_and_caps() {
        let r = RetryPolicy::with_max_attempts(5)
            .backoff_base(Duration::from_millis(10))
            .backoff_cap(Duration::from_millis(25));
        assert_eq!(r.backoff_after(1), Duration::from_millis(10));
        assert_eq!(r.backoff_after(2), Duration::from_millis(20));
        assert_eq!(r.backoff_after(3), Duration::from_millis(25));
        assert_eq!(r.backoff_after(40), Duration::from_millis(25));
    }

    #[test]
    fn retry_never_exceeds_max_attempts() {
        silence_injected_panics();
        for max in [1u32, 2, 3, 7] {
            let calls = AtomicU32::new(0);
            let policy = FaultPolicy::default().max_attempts(max);
            let eval = |_: &[f64]| -> f64 {
                calls.fetch_add(1, Ordering::SeqCst);
                panic::panic_any(InjectedPanic {
                    message: "always fails".to_string(),
                })
            };
            let outcome = policy.execute(&eval, &[1.0]);
            assert_eq!(calls.load(Ordering::SeqCst), max);
            match outcome {
                EvalOutcome::Failed(f) => {
                    assert_eq!(f.attempts, max);
                    assert_eq!(f.kind, FaultKind::Panic);
                }
                other => panic!("expected Failed, got {other:?}"),
            }
        }
    }

    #[test]
    fn transient_panic_recovers_with_backoff_accounting() {
        silence_injected_panics();
        let calls = AtomicU32::new(0);
        let policy = FaultPolicy::default()
            .retry(RetryPolicy::with_max_attempts(4).backoff_base(Duration::from_millis(1)));
        let eval = |genes: &[f64]| -> f64 {
            if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                panic::panic_any(InjectedPanic {
                    message: "transient".to_string(),
                });
            }
            genes[0] * 2.0
        };
        match policy.execute(&eval, &[21.0]) {
            EvalOutcome::Recovered {
                value,
                failures,
                backoff,
                kind,
            } => {
                assert_eq!(value, 42.0);
                assert_eq!(failures, 2);
                assert_eq!(kind, FaultKind::Panic);
                // 1ms after failure 1, 2ms after failure 2.
                assert_eq!(backoff, Duration::from_millis(3));
            }
            other => panic!("expected Recovered, got {other:?}"),
        }
    }

    #[test]
    fn persistent_nan_is_quarantined() {
        let policy = FaultPolicy::tolerant(3);
        let outcome: EvalOutcome<f64> = policy.execute(&|_: &[f64]| f64::NAN, &[1.0]);
        match outcome {
            EvalOutcome::Quarantined {
                value, failures, ..
            } => {
                assert_eq!(value, f64::INFINITY);
                assert_eq!(failures, 3);
            }
            other => panic!("expected Quarantined, got {other:?}"),
        }
    }

    #[test]
    fn nan_passes_through_without_quarantine_policy() {
        let policy = FaultPolicy::default();
        match policy.execute(&|_: &[f64]| f64::NAN, &[1.0]) {
            EvalOutcome::Ok(v) => assert!(v.is_nan()),
            other => panic!("expected Ok, got {other:?}"),
        }
    }

    #[test]
    fn persistent_panic_aborts_even_under_quarantine_action() {
        silence_injected_panics();
        let policy = FaultPolicy::tolerant(2);
        let outcome: EvalOutcome<f64> = policy.execute(
            &|_: &[f64]| -> f64 {
                panic::panic_any(InjectedPanic {
                    message: "hard fault".to_string(),
                })
            },
            &[1.0],
        );
        match outcome {
            EvalOutcome::Failed(f) => {
                assert_eq!(f.kind, FaultKind::Panic);
                assert_eq!(f.message, "hard fault");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn outcome_retry_counts() {
        assert_eq!(EvalOutcome::Ok(1.0).retries(), 0);
        let rec = EvalOutcome::Recovered {
            value: 1.0,
            failures: 2,
            backoff: Duration::ZERO,
            kind: FaultKind::Panic,
        };
        assert_eq!(rec.retries(), 2);
        let q = EvalOutcome::Quarantined {
            value: 1.0,
            failures: 3,
            backoff: Duration::ZERO,
            kind: FaultKind::NonFinite,
        };
        assert_eq!(q.retries(), 2);
    }

    #[test]
    fn injection_schedule_is_deterministic_and_rate_like() {
        let plan = FaultPlan::seeded(7).panics(0.25);
        let a = FaultInjector::new(plan);
        let b = FaultInjector::new(plan);
        let mut scheduled = 0;
        for i in 0..400 {
            let genes = vec![i as f64 * 0.37, (i % 13) as f64];
            assert_eq!(a.decide(&genes), b.decide(&genes));
            if a.decide(&genes).is_some() {
                scheduled += 1;
            }
        }
        // Rough rate check: 25% ± a wide margin.
        assert!((50..=150).contains(&scheduled), "scheduled = {scheduled}");
    }

    #[test]
    fn injector_faults_first_calls_then_recovers() {
        // Find a candidate the plan schedules for panic.
        let plan = FaultPlan::seeded(3).panics(0.5).faults_per_candidate(2);
        let injector = FaultInjector::new(plan);
        let genes = (0..200)
            .map(|i| vec![i as f64])
            .find(|g| injector.decide(g) == Some(InjectedFault::Panic))
            .expect("a scheduled candidate exists");
        let eval = |g: &[f64]| g[0] + 1.0;
        for _ in 0..2 {
            let caught = panic::catch_unwind(AssertUnwindSafe(|| injector.invoke(&eval, &genes)));
            assert!(caught.is_err());
        }
        // Third call succeeds.
        assert_eq!(injector.invoke(&eval, &genes), genes[0] + 1.0);
        assert_eq!(injector.counts().panics, 2);
        assert_eq!(injector.counts().failures(), 2);
    }

    #[test]
    fn corrupting_injection_is_detected_by_policy() {
        let plan = FaultPlan::seeded(11).nonfinite(1.0);
        let injector = FaultInjector::new(plan);
        let policy = FaultPolicy::tolerant(2);
        let eval = |g: &[f64]| g[0] * 3.0;
        let outcome = policy.execute(&|g: &[f64]| injector.invoke(&eval, g), &[2.0]);
        match outcome {
            EvalOutcome::Recovered {
                value, failures, ..
            } => {
                assert_eq!(value, 6.0);
                assert_eq!(failures, 1);
            }
            other => panic!("expected Recovered, got {other:?}"),
        }
        assert_eq!(injector.counts().nonfinite, 1);
    }

    #[test]
    fn injecting_evaluator_matches_under_serial_and_parallel() {
        // With nonfinite-only injection and faults_per_candidate = 0 the
        // wrapper is a pass-through; with 1 the first call per candidate
        // corrupts. Either way results are order-preserving.
        let batch: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64, 0.5]).collect();
        let eval = |g: &[f64]| g[0] + g[1];
        let plan = FaultPlan::seeded(5).nonfinite(0.3);
        let serial = FaultInjectingEvaluator::new(SerialEvaluator, plan);
        let parallel = FaultInjectingEvaluator::new(ParallelEvaluator::with_threads(4), plan);
        let a: Vec<f64> = serial.eval_batch(&eval, &batch);
        let b: Vec<f64> = parallel.eval_batch(&eval, &batch);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(x == y || (x.is_nan() && y.is_nan()));
        }
        assert_eq!(serial.injector().counts(), parallel.injector().counts());
        assert_eq!(serial.label(), "fault-injecting");
        let _inner = serial.into_inner();
    }

    #[test]
    fn f64_quarantine_impl() {
        assert!(f64::NAN.is_tainted());
        assert!(f64::INFINITY.is_tainted());
        assert!(!1.5f64.is_tainted());
        assert_eq!(1.5f64.quarantine(), f64::INFINITY);
        assert!(1.5f64.corrupt().is_nan());
    }
}
