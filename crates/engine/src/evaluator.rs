//! Evaluation fan-out strategies: serial loop or scoped-thread pool.

use crate::pool;

/// A strategy for evaluating a batch of candidate gene vectors.
///
/// Implementations must preserve input order: `eval_batch(f, batch)[i]`
/// is `f(&batch[i])` regardless of how the work is scheduled. Combined
/// with the fact that evaluation functions in this workspace consume no
/// randomness, this makes a seeded optimizer run reproduce bit-for-bit
/// under any evaluator.
pub trait Evaluator {
    /// A short human-readable name for logs and stats.
    fn label(&self) -> &'static str;

    /// Evaluates every gene vector in `batch`, returning results in input
    /// order.
    fn eval_batch<T, F>(&self, eval: &F, batch: &[Vec<f64>]) -> Vec<T>
    where
        T: Send,
        F: Fn(&[f64]) -> T + Sync;
}

/// Evaluates candidates one at a time on the calling thread.
///
/// This reproduces the behavior of the original inline run loops exactly
/// and is the default strategy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SerialEvaluator;

impl Evaluator for SerialEvaluator {
    fn label(&self) -> &'static str {
        "serial"
    }

    fn eval_batch<T, F>(&self, eval: &F, batch: &[Vec<f64>]) -> Vec<T>
    where
        T: Send,
        F: Fn(&[f64]) -> T + Sync,
    {
        batch.iter().map(|genes| eval(genes)).collect()
    }
}

/// Evaluates candidates across scoped OS threads.
///
/// Work is distributed through the shared [`pool`] helper: workers
/// claim candidates off a shared counter and write each result into
/// that candidate's output slot, so the result order is identical to
/// [`SerialEvaluator`]'s no matter how the threads are scheduled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParallelEvaluator {
    /// Worker-thread cap; `0` means "use available parallelism".
    pub threads: usize,
}

impl ParallelEvaluator {
    /// A parallel evaluator capped at `threads` workers (`0` = automatic).
    pub fn with_threads(threads: usize) -> Self {
        ParallelEvaluator { threads }
    }

    fn resolve_threads(&self, batch_len: usize) -> usize {
        let auto = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let cap = if self.threads == 0 {
            auto
        } else {
            self.threads
        };
        cap.min(batch_len).max(1)
    }
}

impl Evaluator for ParallelEvaluator {
    fn label(&self) -> &'static str {
        "parallel"
    }

    fn eval_batch<T, F>(&self, eval: &F, batch: &[Vec<f64>]) -> Vec<T>
    where
        T: Send,
        F: Fn(&[f64]) -> T + Sync,
    {
        let workers = self.resolve_threads(batch.len());
        if workers <= 1 || batch.len() <= 1 {
            return SerialEvaluator.eval_batch(eval, batch);
        }
        pool::map_indexed(workers, batch.len(), |i| eval(&batch[i]))
    }
}

/// Enum-dispatched evaluator choice, used inside optimizer configs.
///
/// The run-loop configs derive `Clone`/`Debug`/`PartialEq`, so they store
/// this enum rather than a boxed trait object. [`From`] impls let builder
/// methods accept the concrete strategy types directly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum EvaluatorKind {
    /// One-at-a-time evaluation on the calling thread (the default).
    #[default]
    Serial,
    /// Scoped-thread fan-out with automatic worker count.
    Parallel,
    /// Scoped-thread fan-out capped at a fixed worker count.
    ParallelWith(
        /// Maximum worker threads (`0` = automatic).
        usize,
    ),
}

impl EvaluatorKind {
    /// A short human-readable name for logs and stats.
    pub fn label(&self) -> &'static str {
        match self {
            EvaluatorKind::Serial => SerialEvaluator.label(),
            EvaluatorKind::Parallel | EvaluatorKind::ParallelWith(_) => {
                ParallelEvaluator::default().label()
            }
        }
    }

    /// Evaluates a batch with the selected strategy (input order
    /// preserved).
    pub fn eval_batch<T, F>(&self, eval: &F, batch: &[Vec<f64>]) -> Vec<T>
    where
        T: Send,
        F: Fn(&[f64]) -> T + Sync,
    {
        match self {
            EvaluatorKind::Serial => SerialEvaluator.eval_batch(eval, batch),
            EvaluatorKind::Parallel => ParallelEvaluator::default().eval_batch(eval, batch),
            EvaluatorKind::ParallelWith(n) => {
                ParallelEvaluator::with_threads(*n).eval_batch(eval, batch)
            }
        }
    }
}

impl From<SerialEvaluator> for EvaluatorKind {
    fn from(_: SerialEvaluator) -> Self {
        EvaluatorKind::Serial
    }
}

impl From<ParallelEvaluator> for EvaluatorKind {
    fn from(p: ParallelEvaluator) -> Self {
        if p.threads == 0 {
            EvaluatorKind::Parallel
        } else {
            EvaluatorKind::ParallelWith(p.threads)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64, (2 * i) as f64]).collect()
    }

    fn sum(genes: &[f64]) -> f64 {
        genes.iter().sum()
    }

    #[test]
    fn serial_preserves_order() {
        let b = batch(7);
        let out = SerialEvaluator.eval_batch(&sum, &b);
        assert_eq!(out, vec![0.0, 3.0, 6.0, 9.0, 12.0, 15.0, 18.0]);
    }

    #[test]
    fn parallel_matches_serial() {
        let b = batch(101);
        let serial = SerialEvaluator.eval_batch(&sum, &b);
        for threads in [0, 1, 2, 3, 8, 200] {
            let par = ParallelEvaluator::with_threads(threads).eval_batch(&sum, &b);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_handles_empty_and_single() {
        let e = ParallelEvaluator::default();
        let empty: Vec<Vec<f64>> = vec![];
        assert!(e.eval_batch(&sum, &empty).is_empty());
        assert_eq!(e.eval_batch(&sum, &batch(1)), vec![0.0]);
    }

    #[test]
    fn parallel_actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let b = batch(64);
        ParallelEvaluator::with_threads(4).eval_batch(
            &|genes: &[f64]| {
                ids.lock().unwrap().insert(std::thread::current().id());
                genes[0]
            },
            &b,
        );
        assert!(ids.into_inner().unwrap().len() > 1);
    }

    #[test]
    fn kind_dispatch_and_from() {
        let b = batch(5);
        let serial = EvaluatorKind::Serial.eval_batch(&sum, &b);
        assert_eq!(EvaluatorKind::Parallel.eval_batch(&sum, &b), serial);
        assert_eq!(EvaluatorKind::ParallelWith(2).eval_batch(&sum, &b), serial);
        assert_eq!(EvaluatorKind::from(SerialEvaluator), EvaluatorKind::Serial);
        assert_eq!(
            EvaluatorKind::from(ParallelEvaluator::default()),
            EvaluatorKind::Parallel
        );
        assert_eq!(
            EvaluatorKind::from(ParallelEvaluator::with_threads(3)),
            EvaluatorKind::ParallelWith(3)
        );
        assert_eq!(EvaluatorKind::default(), EvaluatorKind::Serial);
        assert_eq!(EvaluatorKind::Serial.label(), "serial");
        assert_eq!(EvaluatorKind::Parallel.label(), "parallel");
    }
}
