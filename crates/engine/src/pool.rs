//! The shared worker-pool primitive: spawn N scoped workers that claim
//! items off a shared counter (work stealing — whichever worker goes
//! idle first takes the next item) and write results into per-item
//! slots, so the output order is the input order no matter how the
//! threads are scheduled.
//!
//! This is the one implementation of the "spawn N workers, steal work,
//! order results deterministically" pattern that used to be duplicated
//! by [`ParallelEvaluator`](crate::ParallelEvaluator) (batch
//! evaluation) and the campaign runner (cell execution); the
//! optimization server's worker pool drives its job loops through it
//! as well.
//!
//! Guarantees:
//!
//! * **Deterministic ordering.** `try_map_indexed(n, count, f)[i]` is
//!   `f(i)` — slot `i` holds item `i`'s result whichever worker ran it.
//! * **Seeded first claims.** Worker `w` processes item `w` first (when
//!   it exists), then steals; with `threads <= 1` items run serially on
//!   the calling thread in index order, and every spawned worker is
//!   guaranteed to execute at least one item when `count >= threads`.
//! * **First-error-wins.** The first `Err` any worker hits is returned;
//!   the remaining workers stop claiming new items (in-flight items
//!   finish).

use crate::metrics::PoolMetrics;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Runs `work(0..count)` across at most `threads` scoped workers,
/// returning results in index order.
///
/// `threads` is clamped to `[1, count]`; `0` and `1` both mean serial
/// execution on the calling thread.
///
/// # Errors
///
/// Returns the first error any worker produced; remaining workers stop
/// claiming new items.
pub fn try_map_indexed<T, E, F>(threads: usize, count: usize, work: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    try_map_indexed_metered(threads, count, None, work)
}

/// [`try_map_indexed`] with an optional [`PoolMetrics`] bundle: each
/// claimed item records its queue wait (pool launch to claim) and run
/// time, and each worker publishes its busy fraction (run time over the
/// pool's wall time) as a `worker`-labeled gauge when the pool drains.
/// Recording is observation only — results, ordering, and error
/// semantics are identical to the unmetered call.
///
/// # Errors
///
/// Returns the first error any worker produced; remaining workers stop
/// claiming new items.
pub fn try_map_indexed_metered<T, E, F>(
    threads: usize,
    count: usize,
    metrics: Option<&PoolMetrics>,
    work: F,
) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let workers = threads.clamp(1, count.max(1));
    let t_start = metrics.map(|_| Instant::now());
    if workers <= 1 {
        let mut out = Vec::with_capacity(count);
        let mut busy = std::time::Duration::ZERO;
        for i in 0..count {
            if let (Some(m), Some(t_start)) = (metrics, t_start) {
                m.queue_wait.observe_duration(t_start.elapsed() - busy);
                let t0 = Instant::now();
                let value = work(i);
                let dt = t0.elapsed();
                busy += dt;
                m.task_run.observe_duration(dt);
                out.push(value?);
            } else {
                out.push(work(i)?);
            }
        }
        if let (Some(m), Some(t_start)) = (metrics, t_start) {
            let wall = t_start.elapsed().as_secs_f64();
            if wall > 0.0 {
                m.worker_busy(0).set(busy.as_secs_f64() / wall);
            }
        }
        return Ok(out);
    }

    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    // Items 0..workers are pre-assigned one per worker; the shared
    // counter hands out the rest.
    let next = AtomicUsize::new(workers);
    let failure: Mutex<Option<E>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for w in 0..workers {
            let slots = &slots;
            let next = &next;
            let failure = &failure;
            let work = &work;
            scope.spawn(move || {
                let mut seeded = Some(w);
                let mut busy = std::time::Duration::ZERO;
                let mut idle_mark = t_start.map(|_| Instant::now());
                loop {
                    if failure
                        .lock()
                        .expect("pool failure slot poisoned")
                        .is_some()
                    {
                        break;
                    }
                    let i = match seeded.take() {
                        Some(i) => i,
                        None => next.fetch_add(1, Ordering::SeqCst),
                    };
                    if i >= count {
                        break;
                    }
                    let t0 = match (metrics, idle_mark) {
                        (Some(m), Some(mark)) => {
                            m.queue_wait.observe_duration(mark.elapsed());
                            Some(Instant::now())
                        }
                        _ => None,
                    };
                    let result = work(i);
                    if let (Some(m), Some(t0)) = (metrics, t0) {
                        let dt = t0.elapsed();
                        busy += dt;
                        m.task_run.observe_duration(dt);
                        idle_mark = Some(Instant::now());
                    }
                    match result {
                        Ok(value) => {
                            *slots[i].lock().expect("pool result slot poisoned") = Some(value);
                        }
                        Err(e) => {
                            let mut slot = failure.lock().expect("pool failure slot poisoned");
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                            break;
                        }
                    }
                }
                if let (Some(m), Some(t_start)) = (metrics, t_start) {
                    let wall = t_start.elapsed().as_secs_f64();
                    if wall > 0.0 {
                        m.worker_busy(w).set(busy.as_secs_f64() / wall);
                    }
                }
            });
        }
    });

    if let Some(e) = failure.into_inner().expect("pool failure slot poisoned") {
        return Err(e);
    }
    Ok(slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("pool result slot poisoned")
                .expect("every slot filled when no worker failed")
        })
        .collect())
}

/// Infallible variant of [`try_map_indexed`]: runs `work(0..count)`
/// across at most `threads` workers, returning results in index order.
pub fn map_indexed<T, F>(threads: usize, count: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    match try_map_indexed(threads, count, |i| {
        Ok::<T, std::convert::Infallible>(work(i))
    }) {
        Ok(out) => out,
        Err(e) => match e {},
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_index_order() {
        for threads in [0, 1, 2, 3, 8, 200] {
            let out = map_indexed(threads, 101, |i| 2 * i);
            assert_eq!(out, (0..101).map(|i| 2 * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_item() {
        assert!(map_indexed(4, 0, |i| i).is_empty());
        assert_eq!(map_indexed(4, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn every_worker_processes_its_seeded_item() {
        use std::collections::HashSet;
        let ids = Mutex::new(HashSet::new());
        map_indexed(4, 64, |i| {
            ids.lock().unwrap().insert(std::thread::current().id());
            i
        });
        assert!(ids.into_inner().unwrap().len() > 1);
    }

    #[test]
    fn first_error_wins_and_stops_claiming() {
        let calls = AtomicU64::new(0);
        let result: Result<Vec<usize>, String> = try_map_indexed(2, 1000, |i| {
            calls.fetch_add(1, Ordering::SeqCst);
            if i == 3 {
                Err(format!("boom at {i}"))
            } else {
                Ok(i)
            }
        });
        assert_eq!(result.unwrap_err(), "boom at 3");
        // Workers stop claiming after the failure: far fewer than 1000
        // calls happen (each in-flight worker finishes at most its
        // current item).
        assert!(calls.load(Ordering::SeqCst) < 1000);
    }

    #[test]
    fn metered_pool_matches_unmetered_and_records() {
        let registry = crate::MetricsRegistry::new();
        let metrics = PoolMetrics::register(&registry, &[("stage", "test")]);
        for threads in [1, 4] {
            let out: Result<Vec<usize>, std::convert::Infallible> =
                try_map_indexed_metered(threads, 37, Some(&metrics), |i| Ok(3 * i));
            assert_eq!(out.unwrap(), (0..37).map(|i| 3 * i).collect::<Vec<_>>());
        }
        assert_eq!(metrics.task_run.count(), 74);
        assert_eq!(metrics.queue_wait.count(), 74);
        let text = registry.render_text();
        assert!(text.contains("dse_pool_worker_busy_ratio{stage=\"test\",worker=\"0\"}"));
    }

    #[test]
    fn serial_error_is_immediate() {
        let calls = AtomicU64::new(0);
        let result: Result<Vec<usize>, &str> = try_map_indexed(1, 10, |i| {
            calls.fetch_add(1, Ordering::SeqCst);
            if i == 2 {
                Err("stop")
            } else {
                Ok(i)
            }
        });
        assert_eq!(result.unwrap_err(), "stop");
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }
}
