//! Per-generation stage timing for the run loops.
//!
//! Every optimizer generation decomposes into the same pipeline stages:
//! variation (gene drawing), evaluation (model calls), ranking (or
//! partitioning), promotion (annealed local→global moves) and survivor
//! selection. [`StageTimer`] measures wall-clock per stage so a run's
//! telemetry stream can report where each generation's time goes.
//!
//! The timer is built disabled by default and a disabled timer never
//! reads the clock, so un-instrumented runs pay only a branch per stage
//! boundary. Timing never touches the optimizer's RNG or state — a run
//! with timing enabled produces bit-identical results to one without.

use std::time::Instant;

/// One stage of an optimizer generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Drawing offspring genes: parent selection, crossover, mutation.
    Variation,
    /// Evaluating candidate gene vectors against the model (includes
    /// cache lookups around the actual fan-out).
    Evaluation,
    /// Ranking or partitioning the merged population (non-dominated
    /// sort, crowding, per-partition cost ranking).
    Ranking,
    /// Annealed promotion of candidates from local to global
    /// competition (SACGA phase II; island migration).
    Promotion,
    /// Survivor selection truncating the merged population back to its
    /// target size.
    Selection,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 5] = [
        Stage::Variation,
        Stage::Evaluation,
        Stage::Ranking,
        Stage::Promotion,
        Stage::Selection,
    ];

    /// Stable lowercase name, matching the JSONL wire format.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Variation => "variation",
            Stage::Evaluation => "evaluation",
            Stage::Ranking => "ranking",
            Stage::Promotion => "promotion",
            Stage::Selection => "selection",
        }
    }
}

/// Nanoseconds accumulated per stage over one generation (or any other
/// span drained by [`StageTimer::take`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageNanos {
    /// Time drawing offspring genes.
    pub variation: u64,
    /// Time evaluating candidates (fan-out plus cache bookkeeping).
    pub evaluation: u64,
    /// Time ranking / partitioning the merged population.
    pub ranking: u64,
    /// Time deciding and applying promotions.
    pub promotion: u64,
    /// Time in survivor selection.
    pub selection: u64,
}

impl StageNanos {
    /// Nanoseconds recorded for `stage`.
    pub fn get(&self, stage: Stage) -> u64 {
        match stage {
            Stage::Variation => self.variation,
            Stage::Evaluation => self.evaluation,
            Stage::Ranking => self.ranking,
            Stage::Promotion => self.promotion,
            Stage::Selection => self.selection,
        }
    }

    /// Sum across all stages (saturating).
    pub fn total(&self) -> u64 {
        self.variation
            .saturating_add(self.evaluation)
            .saturating_add(self.ranking)
            .saturating_add(self.promotion)
            .saturating_add(self.selection)
    }

    /// `true` when nothing has been recorded.
    pub fn is_zero(&self) -> bool {
        self.total() == 0
    }

    /// Folds another span's nanos into this one.
    pub fn merge(&mut self, other: &StageNanos) {
        self.variation = self.variation.saturating_add(other.variation);
        self.evaluation = self.evaluation.saturating_add(other.evaluation);
        self.ranking = self.ranking.saturating_add(other.ranking);
        self.promotion = self.promotion.saturating_add(other.promotion);
        self.selection = self.selection.saturating_add(other.selection);
    }

    fn add(&mut self, stage: Stage, nanos: u64) {
        match stage {
            Stage::Variation => self.variation = self.variation.saturating_add(nanos),
            Stage::Evaluation => self.evaluation = self.evaluation.saturating_add(nanos),
            Stage::Ranking => self.ranking = self.ranking.saturating_add(nanos),
            Stage::Promotion => self.promotion = self.promotion.saturating_add(nanos),
            Stage::Selection => self.selection = self.selection.saturating_add(nanos),
        }
    }
}

/// Accumulates per-stage wall-clock across one generation.
///
/// A disabled timer (the default) never reads the clock: [`time`],
/// [`start`], [`stop`] and [`take`] all reduce to a branch, so loops
/// can leave the calls in place unconditionally and enable the timer
/// only when a sink actually wants timing events.
///
/// [`time`]: StageTimer::time
/// [`start`]: StageTimer::start
/// [`stop`]: StageTimer::stop
/// [`take`]: StageTimer::take
#[derive(Debug)]
pub struct StageTimer {
    enabled: bool,
    open: Option<(Stage, Instant)>,
    acc: StageNanos,
}

impl Default for StageTimer {
    fn default() -> Self {
        StageTimer::disabled()
    }
}

impl StageTimer {
    /// A timer that records nothing (the default for bare runs).
    pub fn disabled() -> Self {
        StageTimer {
            enabled: false,
            open: None,
            acc: StageNanos::default(),
        }
    }

    /// A timer with recording switched on or off.
    pub fn new(enabled: bool) -> Self {
        StageTimer {
            enabled,
            open: None,
            acc: StageNanos::default(),
        }
    }

    /// Whether the timer records spans.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Switches recording on or off. Disabling closes any open span
    /// without recording it.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.open = None;
        }
    }

    /// Times `f` under `stage`, returning its result. Any span open via
    /// [`start`](StageTimer::start) is paused for the duration and
    /// resumed afterwards.
    pub fn time<R>(&mut self, stage: Stage, f: impl FnOnce() -> R) -> R {
        if !self.enabled {
            return f();
        }
        let resume = self.open.map(|(s, _)| s);
        self.stop();
        let t0 = Instant::now();
        let out = f();
        self.acc.add(stage, t0.elapsed().as_nanos() as u64);
        if let Some(s) = resume {
            self.start(s);
        }
        out
    }

    /// Opens a span for `stage`, closing (and recording) any span that
    /// was already open.
    pub fn start(&mut self, stage: Stage) {
        if !self.enabled {
            return;
        }
        self.stop();
        self.open = Some((stage, Instant::now()));
    }

    /// Closes the open span, if any, folding its elapsed time into the
    /// accumulator.
    pub fn stop(&mut self) {
        if let Some((stage, t0)) = self.open.take() {
            self.acc.add(stage, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Drains the accumulated nanos (closing any open span first) and
    /// resets the accumulator for the next generation.
    pub fn take(&mut self) -> StageNanos {
        self.stop();
        std::mem::take(&mut self.acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_timer_records_nothing() {
        let mut t = StageTimer::disabled();
        let out = t.time(Stage::Evaluation, || 7);
        assert_eq!(out, 7);
        t.start(Stage::Variation);
        t.stop();
        assert!(t.take().is_zero());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_timer_accumulates_per_stage() {
        let mut t = StageTimer::new(true);
        t.time(Stage::Variation, || {
            std::hint::black_box((0..1000).sum::<u64>())
        });
        t.time(Stage::Evaluation, || {
            std::hint::black_box((0..1000).sum::<u64>())
        });
        let n = t.take();
        assert!(n.variation > 0);
        assert!(n.evaluation > 0);
        assert_eq!(n.ranking, 0);
        assert_eq!(n.total(), n.variation + n.evaluation);
        // Drained: the next take starts from zero.
        assert!(t.take().is_zero());
    }

    #[test]
    fn start_stop_spans_accumulate() {
        let mut t = StageTimer::new(true);
        t.start(Stage::Promotion);
        std::hint::black_box((0..1000).sum::<u64>());
        // Starting a new stage closes the previous span.
        t.start(Stage::Selection);
        std::hint::black_box((0..1000).sum::<u64>());
        let n = t.take();
        assert!(n.promotion > 0);
        assert!(n.selection > 0);
    }

    #[test]
    fn time_pauses_and_resumes_open_span() {
        let mut t = StageTimer::new(true);
        t.start(Stage::Promotion);
        t.time(Stage::Evaluation, || {
            std::hint::black_box((0..1000).sum::<u64>())
        });
        std::hint::black_box((0..1000).sum::<u64>());
        let n = t.take();
        assert!(n.promotion > 0);
        assert!(n.evaluation > 0);
    }

    #[test]
    fn disabling_discards_open_span() {
        let mut t = StageTimer::new(true);
        t.start(Stage::Ranking);
        t.set_enabled(false);
        assert!(t.take().is_zero());
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "variation",
                "evaluation",
                "ranking",
                "promotion",
                "selection"
            ]
        );
    }

    #[test]
    fn nanos_merge_and_get() {
        let mut a = StageNanos {
            variation: 1,
            evaluation: 2,
            ranking: 3,
            promotion: 4,
            selection: 5,
        };
        let b = StageNanos {
            variation: 10,
            ..StageNanos::default()
        };
        a.merge(&b);
        assert_eq!(a.get(Stage::Variation), 11);
        assert_eq!(a.total(), 25);
        assert!(!a.is_zero());
    }
}
