//! Opt-in analytic surrogate pre-screening of candidates.
//!
//! A [`SurrogateScreen`] is a cheap model that inspects a candidate's
//! genes *before* the full evaluation runs and may answer with a
//! pessimistic placeholder result for obvious losers. Screened
//! candidates never reach the expensive model and never enter the
//! memoization cache (the placeholder is not the true value of the
//! candidate); they are counted separately in
//! [`EngineStats::screened`](crate::EngineStats).
//!
//! The screen must be *sound with respect to the caller's use*: the
//! engine applies it unconditionally to every cache miss, so a screen
//! that answers `Some` for a candidate the optimizer would have kept
//! changes the run. Callers therefore attach screens explicitly (they
//! are opt-in per run) and conservative thresholds — or a "never
//! screen" configuration whose closure always returns `None` — keep a
//! screened run bit-identical to an unscreened one.

use std::fmt;
use std::sync::Arc;

/// The shared screening closure behind a [`SurrogateScreen`] handle.
type ScreenFn<T> = Arc<dyn Fn(&[f64]) -> Option<T> + Send + Sync>;

/// A cheap pre-evaluation filter: `Some(placeholder)` short-circuits the
/// full model for a candidate, `None` lets it through.
///
/// Cloning is shallow (the underlying closure is shared) and equality is
/// identity — two handles are equal only when they share one closure —
/// so the type can sit inside `PartialEq` run configurations the same
/// way [`SharedCache`](crate::SharedCache) does.
pub struct SurrogateScreen<T> {
    name: String,
    f: ScreenFn<T>,
}

impl<T> SurrogateScreen<T> {
    /// Wraps a screening closure under a diagnostic name.
    pub fn new<F>(name: impl Into<String>, f: F) -> Self
    where
        F: Fn(&[f64]) -> Option<T> + Send + Sync + 'static,
    {
        SurrogateScreen {
            name: name.into(),
            f: Arc::new(f),
        }
    }

    /// The diagnostic name the screen was built with.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Applies the screen to one candidate.
    pub fn screen(&self, genes: &[f64]) -> Option<T> {
        (self.f)(genes)
    }
}

impl<T> Clone for SurrogateScreen<T> {
    fn clone(&self) -> Self {
        SurrogateScreen {
            name: self.name.clone(),
            f: Arc::clone(&self.f),
        }
    }
}

impl<T> fmt::Debug for SurrogateScreen<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SurrogateScreen")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl<T> PartialEq for SurrogateScreen<T> {
    fn eq(&self, other: &Self) -> bool {
        #[allow(ambiguous_wide_pointer_comparisons)]
        Arc::ptr_eq(&self.f, &other.f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn screen_answers_and_passes() {
        let s: SurrogateScreen<f64> =
            SurrogateScreen::new("negatives", |g: &[f64]| (g[0] < 0.0).then_some(-1.0));
        assert_eq!(s.screen(&[-2.0]), Some(-1.0));
        assert_eq!(s.screen(&[2.0]), None);
        assert_eq!(s.name(), "negatives");
    }

    #[test]
    fn equality_is_identity() {
        let a: SurrogateScreen<f64> = SurrogateScreen::new("a", |_: &[f64]| None);
        let b = a.clone();
        let c: SurrogateScreen<f64> = SurrogateScreen::new("a", |_: &[f64]| None);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn debug_shows_name() {
        let s: SurrogateScreen<f64> = SurrogateScreen::new("gbw-floor", |_: &[f64]| None);
        assert!(format!("{s:?}").contains("gbw-floor"));
    }
}
