//! Run-level instrumentation of the evaluation engine.

use std::time::Duration;

/// Counters and timings accumulated across every batch an
/// [`ExecutionEngine`](crate::ExecutionEngine) processes during a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineStats {
    /// Candidate gene vectors submitted for evaluation.
    pub candidates: u64,
    /// Model evaluations actually performed (candidates minus cache
    /// hits).
    pub evaluations: u64,
    /// Candidates answered from the memoization cache (including
    /// duplicates within a single batch).
    pub cache_hits: u64,
    /// Candidates answered by an attached surrogate pre-screen instead
    /// of the full model (never cached; see
    /// [`SurrogateScreen`](crate::SurrogateScreen)).
    pub screened: u64,
    /// Number of batches processed.
    pub batches: u64,
    /// Largest single batch submitted.
    pub max_batch: u64,
    /// Wall-clock time spent inside the evaluation fan-out (excludes
    /// cache bookkeeping).
    pub eval_time: Duration,
    /// Failed evaluation attempts observed (contained panics plus
    /// non-finite results while quarantine is enabled).
    pub failures: u64,
    /// Re-attempts performed after a failure (bounded per candidate by
    /// the retry policy's `max_attempts - 1`).
    pub retries: u64,
    /// Candidates that succeeded after at least one failed attempt.
    pub recovered: u64,
    /// Candidates replaced by a worst-case quarantine placeholder after
    /// their retry budget ran out.
    pub quarantined: u64,
    /// Deterministic retry backoff accounted (not slept) by the fault
    /// policy.
    pub backoff_time: Duration,
    /// Panics injected by the engine's fault injector (0 without one).
    pub injected_panics: u64,
    /// Non-finite results injected by the engine's fault injector.
    pub injected_nonfinite: u64,
    /// Artificial delays injected by the engine's fault injector.
    pub injected_delays: u64,
}

impl EngineStats {
    /// Fraction of candidates served from the cache, in `[0, 1]`;
    /// `0` when nothing has been submitted yet.
    pub fn hit_rate(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.candidates as f64
        }
    }

    /// Mean batch size; `0` before the first batch.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.candidates as f64 / self.batches as f64
        }
    }

    /// The increment accumulated since `earlier` (a snapshot of this
    /// stats block taken at a previous generation boundary): counters
    /// and timings subtract pairwise (saturating, so a restored or
    /// unrelated baseline cannot underflow), while `max_batch` keeps the
    /// current maximum since a per-window maximum is not recoverable
    /// from two cumulative snapshots.
    pub fn since(&self, earlier: &EngineStats) -> EngineStats {
        EngineStats {
            candidates: self.candidates.saturating_sub(earlier.candidates),
            evaluations: self.evaluations.saturating_sub(earlier.evaluations),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            screened: self.screened.saturating_sub(earlier.screened),
            batches: self.batches.saturating_sub(earlier.batches),
            max_batch: self.max_batch,
            eval_time: self.eval_time.saturating_sub(earlier.eval_time),
            failures: self.failures.saturating_sub(earlier.failures),
            retries: self.retries.saturating_sub(earlier.retries),
            recovered: self.recovered.saturating_sub(earlier.recovered),
            quarantined: self.quarantined.saturating_sub(earlier.quarantined),
            backoff_time: self.backoff_time.saturating_sub(earlier.backoff_time),
            injected_panics: self.injected_panics.saturating_sub(earlier.injected_panics),
            injected_nonfinite: self
                .injected_nonfinite
                .saturating_sub(earlier.injected_nonfinite),
            injected_delays: self.injected_delays.saturating_sub(earlier.injected_delays),
        }
    }

    /// Folds another stats block into this one (used when a run spans
    /// several engines, e.g. one per island).
    pub fn merge(&mut self, other: &EngineStats) {
        self.candidates += other.candidates;
        self.evaluations += other.evaluations;
        self.cache_hits += other.cache_hits;
        self.screened += other.screened;
        self.batches += other.batches;
        self.max_batch = self.max_batch.max(other.max_batch);
        self.eval_time += other.eval_time;
        self.failures += other.failures;
        self.retries += other.retries;
        self.recovered += other.recovered;
        self.quarantined += other.quarantined;
        self.backoff_time += other.backoff_time;
        self.injected_panics += other.injected_panics;
        self.injected_nonfinite += other.injected_nonfinite;
        self.injected_delays += other.injected_delays;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_empty() {
        let s = EngineStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.mean_batch(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let s = EngineStats {
            candidates: 10,
            evaluations: 7,
            cache_hits: 3,
            batches: 2,
            max_batch: 6,
            eval_time: Duration::from_millis(5),
            ..EngineStats::default()
        };
        assert!((s.hit_rate() - 0.3).abs() < 1e-12);
        assert!((s.mean_batch() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn since_subtracts_counters_saturating() {
        let earlier = EngineStats {
            candidates: 100,
            evaluations: 80,
            cache_hits: 20,
            batches: 2,
            max_batch: 60,
            eval_time: Duration::from_millis(10),
            failures: 3,
            ..EngineStats::default()
        };
        let now = EngineStats {
            candidates: 160,
            evaluations: 120,
            cache_hits: 40,
            batches: 3,
            max_batch: 60,
            eval_time: Duration::from_millis(16),
            failures: 4,
            ..EngineStats::default()
        };
        let delta = now.since(&earlier);
        assert_eq!(delta.candidates, 60);
        assert_eq!(delta.evaluations, 40);
        assert_eq!(delta.cache_hits, 20);
        assert_eq!(delta.batches, 1);
        assert_eq!(delta.max_batch, 60);
        assert_eq!(delta.eval_time, Duration::from_millis(6));
        assert_eq!(delta.failures, 1);
        // A baseline ahead of the snapshot saturates to zero rather
        // than underflowing.
        let none = earlier.since(&now);
        assert_eq!(none.candidates, 0);
        assert_eq!(none.eval_time, Duration::ZERO);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = EngineStats {
            candidates: 10,
            evaluations: 8,
            cache_hits: 2,
            screened: 0,
            batches: 1,
            max_batch: 10,
            eval_time: Duration::from_millis(1),
            failures: 3,
            retries: 2,
            recovered: 1,
            quarantined: 1,
            backoff_time: Duration::from_millis(4),
            injected_panics: 2,
            injected_nonfinite: 1,
            injected_delays: 0,
        };
        let b = EngineStats {
            candidates: 4,
            evaluations: 4,
            cache_hits: 0,
            screened: 3,
            batches: 2,
            max_batch: 12,
            eval_time: Duration::from_millis(2),
            failures: 1,
            retries: 1,
            recovered: 1,
            quarantined: 0,
            backoff_time: Duration::from_millis(1),
            injected_panics: 0,
            injected_nonfinite: 1,
            injected_delays: 3,
        };
        a.merge(&b);
        assert_eq!(a.candidates, 14);
        assert_eq!(a.evaluations, 12);
        assert_eq!(a.cache_hits, 2);
        assert_eq!(a.screened, 3);
        assert_eq!(a.batches, 3);
        assert_eq!(a.max_batch, 12);
        assert_eq!(a.eval_time, Duration::from_millis(3));
        assert_eq!(a.failures, 4);
        assert_eq!(a.retries, 3);
        assert_eq!(a.recovered, 2);
        assert_eq!(a.quarantined, 1);
        assert_eq!(a.backoff_time, Duration::from_millis(5));
        assert_eq!(a.injected_panics, 2);
        assert_eq!(a.injected_nonfinite, 2);
        assert_eq!(a.injected_delays, 3);
    }
}
