//! The execution engine: cache lookup, evaluation fan-out, stats.

use crate::cache::{CacheConfig, MemoCache};
use crate::evaluator::EvaluatorKind;
use crate::stats::EngineStats;
use std::time::Instant;

/// Configuration of an [`ExecutionEngine`].
///
/// The default — serial evaluation, no cache — reproduces the behavior of
/// the original inline run loops exactly, evaluation for evaluation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EngineConfig {
    /// Fan-out strategy for each batch.
    pub evaluator: EvaluatorKind,
    /// Memoization cache settings (capacity `0` disables caching).
    pub cache: CacheConfig,
}

impl EngineConfig {
    /// Selects the evaluation strategy; accepts an [`EvaluatorKind`] or a
    /// concrete strategy such as
    /// [`ParallelEvaluator`](crate::ParallelEvaluator).
    pub fn evaluator(mut self, evaluator: impl Into<EvaluatorKind>) -> Self {
        self.evaluator = evaluator.into();
        self
    }

    /// Enables memoization with room for `capacity` entries (`0`
    /// disables it).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache.capacity = capacity;
        self
    }

    /// Sets the cache quantization grid (must be positive and finite).
    pub fn cache_grid(mut self, grid: f64) -> Self {
        self.cache = self.cache.grid(grid);
        self
    }
}

/// Owns candidate evaluation for one optimizer run: consults the
/// memoization cache, fans misses out through the configured evaluator,
/// and accumulates [`EngineStats`].
#[derive(Debug)]
pub struct ExecutionEngine<T> {
    config: EngineConfig,
    cache: MemoCache<T>,
    stats: EngineStats,
}

impl<T: Clone + Send> ExecutionEngine<T> {
    /// Builds an engine from its configuration.
    pub fn new(config: EngineConfig) -> Self {
        let cache = MemoCache::new(config.cache.clone());
        ExecutionEngine {
            config,
            cache,
            stats: EngineStats::default(),
        }
    }

    /// The configuration this engine was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Consumes the engine, returning its accumulated statistics.
    pub fn into_stats(self) -> EngineStats {
        self.stats
    }

    /// Evaluates a batch of gene vectors, returning results in input
    /// order.
    ///
    /// With caching enabled, previously seen candidates (and duplicates
    /// within the batch) are answered from the cache; only genuinely new
    /// candidates reach `eval`. Without a cache this is a pure fan-out
    /// through the configured evaluator.
    pub fn evaluate_batch<F>(&mut self, batch: &[Vec<f64>], eval: &F) -> Vec<T>
    where
        F: Fn(&[f64]) -> T + Sync,
    {
        self.stats.candidates += batch.len() as u64;
        self.stats.batches += 1;
        self.stats.max_batch = self.stats.max_batch.max(batch.len() as u64);

        if self.config.cache.capacity == 0 {
            self.stats.evaluations += batch.len() as u64;
            let t0 = Instant::now();
            let out = self.config.evaluator.eval_batch(eval, batch);
            self.stats.eval_time += t0.elapsed();
            return out;
        }

        // Resolve each candidate to a cached result or a miss slot. A
        // candidate whose key already appeared earlier in this batch is
        // also a hit: it aliases the earlier miss's future result.
        let mut resolved: Vec<Option<T>> = Vec::with_capacity(batch.len());
        resolved.resize_with(batch.len(), || None);
        let mut miss_genes: Vec<Vec<f64>> = Vec::new();
        let mut miss_keys: Vec<Vec<i64>> = Vec::new();
        // position in batch -> index into miss_genes
        let mut miss_of: Vec<Option<usize>> = vec![None; batch.len()];
        let mut pending: std::collections::HashMap<Vec<i64>, usize> =
            std::collections::HashMap::new();

        for (i, genes) in batch.iter().enumerate() {
            let key = self.cache.key_of(genes);
            if let Some(value) = self.cache.get(&key) {
                self.stats.cache_hits += 1;
                resolved[i] = Some(value);
            } else if let Some(&m) = pending.get(&key) {
                self.stats.cache_hits += 1;
                miss_of[i] = Some(m);
            } else {
                let m = miss_genes.len();
                miss_genes.push(genes.clone());
                pending.insert(key.clone(), m);
                miss_keys.push(key);
                miss_of[i] = Some(m);
            }
        }

        self.stats.evaluations += miss_genes.len() as u64;
        let t0 = Instant::now();
        let miss_results = self.config.evaluator.eval_batch(eval, &miss_genes);
        self.stats.eval_time += t0.elapsed();

        for (key, value) in miss_keys.into_iter().zip(miss_results.iter()) {
            self.cache.insert(key, value.clone());
        }

        resolved
            .into_iter()
            .zip(miss_of)
            .map(|(hit, miss)| match (hit, miss) {
                (Some(v), _) => v,
                (None, Some(m)) => miss_results[m].clone(),
                (None, None) => unreachable!("every candidate is a hit or a miss"),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn counted_sum(calls: &AtomicU64) -> impl Fn(&[f64]) -> f64 + Sync + '_ {
        move |genes: &[f64]| {
            calls.fetch_add(1, Ordering::SeqCst);
            genes.iter().sum()
        }
    }

    #[test]
    fn uncached_engine_evaluates_everything() {
        let calls = AtomicU64::new(0);
        let mut engine: ExecutionEngine<f64> = ExecutionEngine::new(EngineConfig::default());
        let batch = vec![vec![1.0], vec![1.0], vec![2.0]];
        let out = engine.evaluate_batch(&batch, &counted_sum(&calls));
        assert_eq!(out, vec![1.0, 1.0, 2.0]);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert_eq!(engine.stats().candidates, 3);
        assert_eq!(engine.stats().evaluations, 3);
        assert_eq!(engine.stats().cache_hits, 0);
        assert_eq!(engine.stats().batches, 1);
        assert_eq!(engine.stats().max_batch, 3);
    }

    #[test]
    fn cache_serves_repeats_across_batches() {
        let calls = AtomicU64::new(0);
        let mut engine: ExecutionEngine<f64> =
            ExecutionEngine::new(EngineConfig::default().cache_capacity(16));
        let f = counted_sum(&calls);
        let b1 = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let b2 = vec![vec![3.0, 4.0], vec![5.0, 6.0]];
        assert_eq!(engine.evaluate_batch(&b1, &f), vec![3.0, 7.0]);
        assert_eq!(engine.evaluate_batch(&b2, &f), vec![7.0, 11.0]);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert_eq!(engine.stats().cache_hits, 1);
        assert_eq!(engine.stats().evaluations, 3);
        assert_eq!(engine.stats().candidates, 4);
        assert!((engine.stats().hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn within_batch_duplicates_evaluate_once() {
        let calls = AtomicU64::new(0);
        let mut engine: ExecutionEngine<f64> =
            ExecutionEngine::new(EngineConfig::default().cache_capacity(16));
        let batch = vec![vec![1.0], vec![1.0], vec![1.0], vec![2.0]];
        let out = engine.evaluate_batch(&batch, &counted_sum(&calls));
        assert_eq!(out, vec![1.0, 1.0, 1.0, 2.0]);
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        assert_eq!(engine.stats().cache_hits, 2);
    }

    #[test]
    fn parallel_cached_engine_matches_serial() {
        let serial_cfg = EngineConfig::default().cache_capacity(8);
        let parallel_cfg = serial_cfg.clone().evaluator(EvaluatorKind::Parallel);
        let mut serial: ExecutionEngine<f64> = ExecutionEngine::new(serial_cfg);
        let mut parallel: ExecutionEngine<f64> = ExecutionEngine::new(parallel_cfg);
        let f = |genes: &[f64]| genes.iter().map(|x| x * x).sum::<f64>();
        let batch: Vec<Vec<f64>> = (0..40).map(|i| vec![(i % 10) as f64, 0.5]).collect();
        assert_eq!(
            serial.evaluate_batch(&batch, &f),
            parallel.evaluate_batch(&batch, &f)
        );
        assert_eq!(serial.stats().evaluations, parallel.stats().evaluations);
        assert_eq!(serial.stats().cache_hits, parallel.stats().cache_hits);
    }

    #[test]
    fn config_builders_compose() {
        let cfg = EngineConfig::default()
            .evaluator(crate::ParallelEvaluator::with_threads(2))
            .cache_capacity(64)
            .cache_grid(1e-6);
        assert_eq!(cfg.evaluator, EvaluatorKind::ParallelWith(2));
        assert_eq!(cfg.cache.capacity, 64);
        assert_eq!(cfg.cache.grid, 1e-6);
    }
}
