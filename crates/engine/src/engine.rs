//! The execution engine: cache lookup, evaluation fan-out, stats.

use crate::cache::{CacheConfig, MemoCache};
use crate::evaluator::EvaluatorKind;
use crate::fault::{EvalFailure, FaultEvent, FaultInjector, FaultPlan, FaultPolicy, Quarantine};
use crate::metrics::EngineMetrics;
use crate::screen::SurrogateScreen;
use crate::session::EvaluationSession;
use crate::shared::SharedCache;
use crate::stats::EngineStats;
use std::time::Instant;

/// Configuration of an [`ExecutionEngine`].
///
/// The default — serial evaluation, no cache, single-attempt fault
/// policy, no fault injection — reproduces the behavior of the original
/// inline run loops exactly, evaluation for evaluation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EngineConfig {
    /// Fan-out strategy for each batch.
    pub evaluator: EvaluatorKind,
    /// Memoization cache settings (capacity `0` disables caching).
    pub cache: CacheConfig,
    /// Fault-handling policy applied per candidate by
    /// [`ExecutionEngine::try_evaluate_batch`].
    pub fault: FaultPolicy,
    /// Deterministic fault-injection schedule (test harness; `None`
    /// injects nothing).
    pub inject: Option<FaultPlan>,
}

impl EngineConfig {
    /// Selects the evaluation strategy; accepts an [`EvaluatorKind`] or a
    /// concrete strategy such as
    /// [`ParallelEvaluator`](crate::ParallelEvaluator).
    pub fn evaluator(mut self, evaluator: impl Into<EvaluatorKind>) -> Self {
        self.evaluator = evaluator.into();
        self
    }

    /// Enables memoization with room for `capacity` entries (`0`
    /// disables it).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache.capacity = capacity;
        self
    }

    /// Sets the cache quantization grid (must be positive and finite).
    pub fn cache_grid(mut self, grid: f64) -> Self {
        self.cache = self.cache.grid(grid);
        self
    }

    /// Sets the fault-handling policy used by
    /// [`ExecutionEngine::try_evaluate_batch`].
    pub fn fault_policy(mut self, fault: FaultPolicy) -> Self {
        self.fault = fault;
        self
    }

    /// Enables deterministic fault injection with the given plan.
    pub fn inject_faults(mut self, plan: FaultPlan) -> Self {
        self.inject = Some(plan);
        self
    }
}

/// Maps raw genes to the canonical representative the memoization
/// cache keys on (see
/// [`set_cache_canonicalizer`](ExecutionEngine::set_cache_canonicalizer)).
/// A plain `fn` pointer: deterministic by construction and cheap to
/// compare.
pub type CacheCanonicalizer = fn(&[f64]) -> Vec<f64>;

/// Owns candidate evaluation for one optimizer run: consults the
/// memoization cache, fans misses out through the configured evaluator,
/// and accumulates [`EngineStats`].
#[derive(Debug)]
pub struct ExecutionEngine<T> {
    pub(crate) config: EngineConfig,
    pub(crate) cache: MemoCache<T>,
    /// When attached, supersedes the private `cache`: all lookups and
    /// insertions go to the shared store (see
    /// [`attach_shared_cache`](ExecutionEngine::attach_shared_cache)).
    pub(crate) shared: Option<SharedCache<T>>,
    pub(crate) stats: EngineStats,
    // Maps genes to a canonical representative before cache-key
    // quantization, so gene vectors the problem decodes to one design
    // share a cache entry.
    pub(crate) canonicalize: Option<CacheCanonicalizer>,
    // Opt-in surrogate pre-screen applied to cache misses.
    pub(crate) screen: Option<SurrogateScreen<T>>,
    pub(crate) injector: Option<FaultInjector>,
    // Injection totals carried over from a checkpoint: a resumed run's
    // injector restarts its counters at zero, so the restored totals act
    // as a base offset.
    pub(crate) injected_base: crate::fault::InjectionCounts,
    // Resolved fault episodes not yet drained by `take_fault_events`,
    // in batch order. Bounded: see `MAX_PENDING_FAULT_EVENTS`.
    pub(crate) fault_events: Vec<FaultEvent>,
    // Opt-in live metric handles mirroring `stats` into a registry.
    // Recording is observation only: it never steers evaluation.
    pub(crate) metrics: Option<EngineMetrics>,
}

/// Cap on buffered [`FaultEvent`]s between drains, so a caller that never
/// drains cannot grow the buffer without bound (counters in
/// [`EngineStats`] remain exact regardless).
const MAX_PENDING_FAULT_EVENTS: usize = 65_536;

/// Buffers a resolved fault episode for the next
/// [`take_fault_events`](ExecutionEngine::take_fault_events) drain,
/// dropping events beyond the pending cap.
pub(crate) fn push_fault_event(events: &mut Vec<FaultEvent>, event: FaultEvent) {
    if events.len() < MAX_PENDING_FAULT_EVENTS {
        events.push(event);
    }
}

/// Spreads one batch call's wall time over its `n` candidates in the
/// attached latency histogram (kernel batches have no per-candidate
/// timings, so each candidate is charged the mean).
pub(crate) fn observe_amortized(
    metrics: Option<&EngineMetrics>,
    elapsed: std::time::Duration,
    n: usize,
) {
    if let Some(m) = metrics {
        if n > 0 {
            #[allow(clippy::cast_precision_loss)]
            m.eval_latency
                .observe_n(elapsed.as_secs_f64() / n as f64, n as u64);
        }
    }
}

impl<T: Clone + Send> ExecutionEngine<T> {
    /// Builds an engine from its configuration.
    pub fn new(config: EngineConfig) -> Self {
        let cache = MemoCache::new(config.cache.clone());
        let injector = config.inject.map(FaultInjector::new);
        ExecutionEngine {
            config,
            cache,
            shared: None,
            stats: EngineStats::default(),
            canonicalize: None,
            screen: None,
            injector,
            injected_base: crate::fault::InjectionCounts::default(),
            fault_events: Vec::new(),
            metrics: None,
        }
    }

    /// Routes all memoization through `shared` instead of the private
    /// per-run cache (which is bypassed entirely while a shared cache is
    /// attached, regardless of the configured private capacity).
    ///
    /// The shared store may answer candidates with values computed by
    /// *other* runs; because cached values are pure functions of the
    /// gene vector this never changes a run's results, only how many
    /// model evaluations it performs. Hits observed through this
    /// engine's lookups are counted in this engine's
    /// [`EngineStats::cache_hits`], so per-run attribution stays exact.
    pub fn attach_shared_cache(&mut self, shared: SharedCache<T>) {
        self.shared = Some(shared);
    }

    /// The shared cache currently attached, if any.
    pub fn shared_cache(&self) -> Option<&SharedCache<T>> {
        self.shared.as_ref()
    }

    /// Installs a canonicalizer applied to genes before cache-key
    /// quantization.
    ///
    /// Problems that decode genes through a coarse discretization (the
    /// drivable-load problem snaps widths to unit fingers, capacitors to
    /// unit caps, …) map many distinct raw gene vectors onto one design;
    /// without canonicalization each raw vector gets its own cache key
    /// and the cache never hits. The canonicalizer must be *exact*: two
    /// gene vectors may share a canonical form only when the problem's
    /// `evaluate` provably returns bit-identical results for both.
    pub fn set_cache_canonicalizer(&mut self, f: CacheCanonicalizer) {
        self.canonicalize = Some(f);
    }

    /// The cache-key canonicalizer currently installed, if any.
    pub fn cache_canonicalizer(&self) -> Option<CacheCanonicalizer> {
        self.canonicalize
    }

    /// Attaches an opt-in surrogate pre-screen: every cache miss is
    /// offered to `screen` first, and candidates it answers skip the
    /// full evaluation entirely. Screened placeholders are counted in
    /// [`EngineStats::screened`] and are never cached.
    pub fn attach_screen(&mut self, screen: SurrogateScreen<T>) {
        self.screen = Some(screen);
    }

    /// The surrogate screen currently attached, if any.
    pub fn screen(&self) -> Option<&SurrogateScreen<T>> {
        self.screen.as_ref()
    }

    /// Attaches a live metric bundle (see
    /// [`EngineMetrics::register`]): every counter mirrored from
    /// [`EngineStats`] is also recorded into the bundle's registry as it
    /// happens, plus per-evaluation latency and batch-size histograms.
    /// Recording is atomic and observation-only — it never touches the
    /// RNG, candidate ordering, or results, so an instrumented run stays
    /// bit-identical to a bare one.
    pub fn attach_metrics(&mut self, metrics: EngineMetrics) {
        self.metrics = Some(metrics);
    }

    /// The metric bundle currently attached, if any.
    pub fn metrics(&self) -> Option<&EngineMetrics> {
        self.metrics.as_ref()
    }

    /// Whether any memoization layer (private or shared) is active.
    fn caching_enabled(&self) -> bool {
        self.shared.is_some() || self.config.cache.capacity > 0
    }

    /// Quantized key of `genes` under the active cache layer's grid,
    /// after canonicalization (when a canonicalizer is installed).
    fn cache_key(&self, genes: &[f64]) -> Vec<i64> {
        let canonical;
        let genes = match self.canonicalize {
            Some(f) => {
                canonical = f(genes);
                &canonical[..]
            }
            None => genes,
        };
        match &self.shared {
            Some(shared) => shared.key_of(genes),
            None => self.cache.key_of(genes),
        }
    }

    /// Looks `key` up in the active cache layer.
    fn cache_get(&mut self, key: &[i64]) -> Option<T> {
        match &self.shared {
            Some(shared) => shared.get(key),
            None => self.cache.get(key),
        }
    }

    /// Stores `value` in the active cache layer.
    fn cache_put(&mut self, key: Vec<i64>, value: T) {
        match &self.shared {
            Some(shared) => shared.insert(key, value),
            None => self.cache.insert(key, value),
        }
    }

    /// Drains the fault episodes resolved since the previous drain
    /// (recovered or quarantined candidates, in batch order). Run loops
    /// call this once per generation to forward the episodes into their
    /// telemetry streams; fatal failures are not buffered here — they
    /// surface as [`EvalFailure`] errors instead.
    pub fn take_fault_events(&mut self) -> Vec<FaultEvent> {
        std::mem::take(&mut self.fault_events)
    }

    /// The configuration this engine was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Replaces the accumulated statistics wholesale — used when a run
    /// resumes from a checkpoint, so counters continue from the values
    /// recorded at kill time.
    pub fn restore_stats(&mut self, stats: EngineStats) {
        self.injected_base = crate::fault::InjectionCounts {
            panics: stats.injected_panics,
            nonfinite: stats.injected_nonfinite,
            delays: stats.injected_delays,
        };
        self.stats = stats;
    }

    /// Consumes the engine, returning its accumulated statistics.
    pub fn into_stats(self) -> EngineStats {
        self.stats
    }

    /// Evaluates a batch of gene vectors, returning results in input
    /// order.
    ///
    /// With caching enabled, previously seen candidates (and duplicates
    /// within the batch) are answered from the cache; only genuinely new
    /// candidates reach `eval`. Without a cache this is a pure fan-out
    /// through the configured evaluator.
    pub fn evaluate_batch<F>(&mut self, batch: &[Vec<f64>], eval: &F) -> Vec<T>
    where
        F: Fn(&[f64]) -> T + Sync,
    {
        self.evaluate_batch_with(batch, eval, &|chunk: &[Vec<f64>]| {
            chunk.iter().map(|genes| eval(genes)).collect()
        })
    }

    /// [`evaluate_batch`](ExecutionEngine::evaluate_batch) with an
    /// explicit batch kernel.
    ///
    /// `batch_eval` must be observationally identical to mapping `eval`
    /// over the chunk (same values, bit for bit) — it exists so problems
    /// with a struct-of-arrays fast path can evaluate a whole miss set in
    /// one call. The kernel is used only under the serial evaluator; the
    /// parallel evaluator keeps the per-candidate fan-out so a batch
    /// still spreads across threads.
    pub fn evaluate_batch_with<F, B>(
        &mut self,
        batch: &[Vec<f64>],
        eval: &F,
        batch_eval: &B,
    ) -> Vec<T>
    where
        F: Fn(&[f64]) -> T + Sync,
        B: Fn(&[Vec<f64>]) -> Vec<T>,
    {
        self.stats.candidates += batch.len() as u64;
        self.stats.batches += 1;
        self.stats.max_batch = self.stats.max_batch.max(batch.len() as u64);
        if let Some(m) = &self.metrics {
            m.candidates.add(batch.len() as u64);
            #[allow(clippy::cast_precision_loss)]
            m.batch_size.observe(batch.len() as f64);
        }

        if !self.caching_enabled() {
            let (values, _screened) = self.run_values_with(batch, eval, batch_eval);
            return values;
        }

        // Resolve each candidate to a cached result or a miss slot. A
        // candidate whose key already appeared earlier in this batch is
        // also a hit: it aliases the earlier miss's future result.
        let mut resolved: Vec<Option<T>> = Vec::with_capacity(batch.len());
        resolved.resize_with(batch.len(), || None);
        let mut miss_genes: Vec<Vec<f64>> = Vec::new();
        let mut miss_keys: Vec<Vec<i64>> = Vec::new();
        // position in batch -> index into miss_genes
        let mut miss_of: Vec<Option<usize>> = vec![None; batch.len()];
        let mut pending: std::collections::HashMap<Vec<i64>, usize> =
            std::collections::HashMap::new();

        let hits_before = self.stats.cache_hits;
        for (i, genes) in batch.iter().enumerate() {
            let key = self.cache_key(genes);
            if let Some(value) = self.cache_get(&key) {
                self.stats.cache_hits += 1;
                resolved[i] = Some(value);
            } else if let Some(&m) = pending.get(&key) {
                self.stats.cache_hits += 1;
                miss_of[i] = Some(m);
            } else {
                let m = miss_genes.len();
                miss_genes.push(genes.clone());
                pending.insert(key.clone(), m);
                miss_keys.push(key);
                miss_of[i] = Some(m);
            }
        }
        if let Some(m) = &self.metrics {
            m.cache_hits.add(self.stats.cache_hits - hits_before);
        }

        let (miss_results, screened) = self.run_values_with(&miss_genes, eval, batch_eval);

        for ((key, value), &was_screened) in miss_keys
            .into_iter()
            .zip(miss_results.iter())
            .zip(&screened)
        {
            if !was_screened {
                self.cache_put(key, value.clone());
            }
        }

        resolved
            .into_iter()
            .zip(miss_of)
            .map(|(hit, miss)| match (hit, miss) {
                (Some(v), _) => v,
                (None, Some(m)) => miss_results[m].clone(),
                (None, None) => unreachable!("every candidate is a hit or a miss"),
            })
            .collect()
    }

    /// Evaluates a miss set for the plain (non-fault-tolerant) path:
    /// screened candidates are answered by the surrogate, the rest go
    /// through the batch kernel (serial evaluator) or the scalar fan-out
    /// (parallel evaluators). Returns values in miss order plus the
    /// screened mask (screened values must not be cached).
    fn run_values_with<F, B>(
        &mut self,
        miss: &[Vec<f64>],
        eval: &F,
        batch_eval: &B,
    ) -> (Vec<T>, Vec<bool>)
    where
        F: Fn(&[f64]) -> T + Sync,
        B: Fn(&[Vec<f64>]) -> Vec<T>,
    {
        let mut slots: Vec<Option<T>> = vec![None; miss.len()];
        let mut screened = vec![false; miss.len()];
        if let Some(screen) = self.screen.clone() {
            for (i, genes) in miss.iter().enumerate() {
                if let Some(value) = screen.screen(genes) {
                    self.stats.screened += 1;
                    screened[i] = true;
                    slots[i] = Some(value);
                }
            }
        }
        let live: Vec<usize> = (0..miss.len()).filter(|&i| !screened[i]).collect();
        self.stats.evaluations += live.len() as u64;
        if let Some(m) = &self.metrics {
            m.screened.add((miss.len() - live.len()) as u64);
            m.evaluations.add(live.len() as u64);
        }
        let serial = matches!(self.config.evaluator, EvaluatorKind::Serial);
        let t0 = Instant::now();
        if live.len() == miss.len() {
            // Nothing screened: evaluate the miss set in place.
            let values = if serial {
                batch_eval(miss)
            } else {
                self.config.evaluator.eval_batch(eval, miss)
            };
            let dt = t0.elapsed();
            self.stats.eval_time += dt;
            observe_amortized(self.metrics.as_ref(), dt, live.len());
            assert_eq!(
                values.len(),
                miss.len(),
                "batch kernel mis-sized its output"
            );
            return (values, screened);
        }
        let live_genes: Vec<Vec<f64>> = live.iter().map(|&i| miss[i].clone()).collect();
        let values = if serial {
            batch_eval(&live_genes)
        } else {
            self.config.evaluator.eval_batch(eval, &live_genes)
        };
        let dt = t0.elapsed();
        self.stats.eval_time += dt;
        observe_amortized(self.metrics.as_ref(), dt, live.len());
        assert_eq!(
            values.len(),
            live_genes.len(),
            "batch kernel mis-sized its output"
        );
        for (&i, value) in live.iter().zip(values) {
            slots[i] = Some(value);
        }
        let out = slots
            .into_iter()
            .map(|slot| slot.expect("every miss slot is screened or evaluated"))
            .collect();
        (out, screened)
    }
}

impl<T: Clone + Send + Quarantine> ExecutionEngine<T> {
    /// Fault-tolerant variant of
    /// [`evaluate_batch`](ExecutionEngine::evaluate_batch): every
    /// candidate is evaluated under the configured [`FaultPolicy`]
    /// (panics contained, bounded retries, optional quarantine of
    /// non-finite results) with faults injected when the configuration
    /// carries a [`FaultPlan`].
    ///
    /// Returns the results in input order, or the first [`EvalFailure`]
    /// (by batch position) when a candidate exhausts its retry budget
    /// and the policy aborts. Fault counters are folded into
    /// [`EngineStats`] in input order, so they are identical under
    /// serial and parallel evaluation. Tainted (non-finite) and
    /// quarantined results are never stored in the memoization cache.
    pub fn try_evaluate_batch<F>(
        &mut self,
        batch: &[Vec<f64>],
        eval: &F,
    ) -> Result<Vec<T>, EvalFailure>
    where
        F: Fn(&[f64]) -> T + Sync,
    {
        self.try_evaluate_batch_with(batch, eval, &|chunk: &[Vec<f64>]| {
            chunk.iter().map(|genes| eval(genes)).collect()
        })
    }

    /// [`try_evaluate_batch`](ExecutionEngine::try_evaluate_batch) with
    /// an explicit batch kernel.
    ///
    /// `batch_eval` must be observationally identical to mapping `eval`
    /// over the chunk (same values, bit for bit). Under the serial
    /// evaluator, cache misses that are neither screened nor scheduled
    /// for fault injection run through the kernel in one call;
    /// fault-scheduled candidates keep the scalar guarded path so
    /// injection, retry, and quarantine accounting stay bit-identical to
    /// a scalar sweep. A kernel that panics (or mis-sizes its output)
    /// demotes the affected candidates to the scalar guarded path, so
    /// the fault policy still contains per-candidate panics.
    ///
    /// This is a thin wrapper over the incremental submission API: the
    /// whole batch is submitted to an [`EvaluationSession`] and drained
    /// to a barrier, which reproduces the historical one-shot semantics
    /// (hit/alias resolution in batch order, fault accounting in batch
    /// order, misses cached in first-occurrence order) bit for bit.
    pub fn try_evaluate_batch_with<F, B>(
        &mut self,
        batch: &[Vec<f64>],
        eval: &F,
        batch_eval: &B,
    ) -> Result<Vec<T>, EvalFailure>
    where
        F: Fn(&[f64]) -> T + Sync,
        B: Fn(&[Vec<f64>]) -> Vec<T>,
    {
        self.with_session(eval, batch_eval, |session| {
            for genes in batch {
                session.submit(genes);
            }
            session.drain_all()
        })
    }

    /// Opens an [`EvaluationSession`] over this engine and runs `f`
    /// inside it.
    ///
    /// The session borrows the engine exclusively: stats, cache
    /// contents, and fault events accumulated by the session are visible
    /// on the engine as soon as `f` returns. Under a parallel evaluator
    /// the session spawns its worker pool for the duration of `f`, so
    /// submissions evaluate concurrently with the caller's own work
    /// between drains; see the [`session`](crate::session) module docs
    /// for the full semantics.
    pub fn with_session<F, B, R>(
        &mut self,
        eval: &F,
        batch_eval: &B,
        f: impl FnOnce(&mut EvaluationSession<'_, T, F, B>) -> R,
    ) -> R
    where
        F: Fn(&[f64]) -> T + Sync,
        B: Fn(&[Vec<f64>]) -> Vec<T>,
    {
        crate::session::run_session(self, eval, batch_eval, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn counted_sum(calls: &AtomicU64) -> impl Fn(&[f64]) -> f64 + Sync + '_ {
        move |genes: &[f64]| {
            calls.fetch_add(1, Ordering::SeqCst);
            genes.iter().sum()
        }
    }

    #[test]
    fn uncached_engine_evaluates_everything() {
        let calls = AtomicU64::new(0);
        let mut engine: ExecutionEngine<f64> = ExecutionEngine::new(EngineConfig::default());
        let batch = vec![vec![1.0], vec![1.0], vec![2.0]];
        let out = engine.evaluate_batch(&batch, &counted_sum(&calls));
        assert_eq!(out, vec![1.0, 1.0, 2.0]);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert_eq!(engine.stats().candidates, 3);
        assert_eq!(engine.stats().evaluations, 3);
        assert_eq!(engine.stats().cache_hits, 0);
        assert_eq!(engine.stats().batches, 1);
        assert_eq!(engine.stats().max_batch, 3);
    }

    #[test]
    fn cache_serves_repeats_across_batches() {
        let calls = AtomicU64::new(0);
        let mut engine: ExecutionEngine<f64> =
            ExecutionEngine::new(EngineConfig::default().cache_capacity(16));
        let f = counted_sum(&calls);
        let b1 = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let b2 = vec![vec![3.0, 4.0], vec![5.0, 6.0]];
        assert_eq!(engine.evaluate_batch(&b1, &f), vec![3.0, 7.0]);
        assert_eq!(engine.evaluate_batch(&b2, &f), vec![7.0, 11.0]);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert_eq!(engine.stats().cache_hits, 1);
        assert_eq!(engine.stats().evaluations, 3);
        assert_eq!(engine.stats().candidates, 4);
        assert!((engine.stats().hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn within_batch_duplicates_evaluate_once() {
        let calls = AtomicU64::new(0);
        let mut engine: ExecutionEngine<f64> =
            ExecutionEngine::new(EngineConfig::default().cache_capacity(16));
        let batch = vec![vec![1.0], vec![1.0], vec![1.0], vec![2.0]];
        let out = engine.evaluate_batch(&batch, &counted_sum(&calls));
        assert_eq!(out, vec![1.0, 1.0, 1.0, 2.0]);
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        assert_eq!(engine.stats().cache_hits, 2);
    }

    #[test]
    fn parallel_cached_engine_matches_serial() {
        let serial_cfg = EngineConfig::default().cache_capacity(8);
        let parallel_cfg = serial_cfg.clone().evaluator(EvaluatorKind::Parallel);
        let mut serial: ExecutionEngine<f64> = ExecutionEngine::new(serial_cfg);
        let mut parallel: ExecutionEngine<f64> = ExecutionEngine::new(parallel_cfg);
        let f = |genes: &[f64]| genes.iter().map(|x| x * x).sum::<f64>();
        let batch: Vec<Vec<f64>> = (0..40).map(|i| vec![(i % 10) as f64, 0.5]).collect();
        assert_eq!(
            serial.evaluate_batch(&batch, &f),
            parallel.evaluate_batch(&batch, &f)
        );
        assert_eq!(serial.stats().evaluations, parallel.stats().evaluations);
        assert_eq!(serial.stats().cache_hits, parallel.stats().cache_hits);
    }

    #[test]
    fn shared_cache_engine_matches_private_cache_engine() {
        let mut private: ExecutionEngine<f64> =
            ExecutionEngine::new(EngineConfig::default().cache_capacity(16));
        let mut shared_a: ExecutionEngine<f64> = ExecutionEngine::new(EngineConfig::default());
        let mut shared_b: ExecutionEngine<f64> = ExecutionEngine::new(EngineConfig::default());
        let store = crate::SharedCache::with_capacity(16);
        shared_a.attach_shared_cache(store.clone());
        shared_b.attach_shared_cache(store.clone());

        let f = |genes: &[f64]| genes.iter().map(|x| x * 3.0).sum::<f64>();
        let batch: Vec<Vec<f64>> = (0..12).map(|i| vec![(i % 4) as f64]).collect();

        // Results are identical whether the cache is private or shared.
        let expect = private.evaluate_batch(&batch, &f);
        assert_eq!(shared_a.evaluate_batch(&batch, &f), expect);
        // A second engine on the same store is answered entirely from it.
        assert_eq!(shared_b.evaluate_batch(&batch, &f), expect);
        assert_eq!(shared_b.stats().evaluations, 0);
        assert_eq!(shared_b.stats().cache_hits, batch.len() as u64);
        // Per-run attribution: each engine counted only its own hits.
        assert_eq!(shared_a.stats().cache_hits, private.stats().cache_hits);
        // Global counters: shared_a ran against an empty store, so every
        // one of its lookups missed (its within-batch aliases were
        // answered by the pending map after the store miss); shared_b's
        // lookups all hit.
        assert_eq!(store.stats().inserts, 4);
        assert_eq!(store.stats().misses, batch.len() as u64);
        assert_eq!(store.stats().hits, shared_b.stats().cache_hits);
    }

    #[test]
    fn shared_cache_supersedes_private_capacity_zero() {
        // A shared cache activates memoization even when the private
        // cache is disabled (capacity 0 — the default).
        let mut engine: ExecutionEngine<f64> = ExecutionEngine::new(EngineConfig::default());
        engine.attach_shared_cache(crate::SharedCache::with_capacity(8));
        let calls = AtomicU64::new(0);
        let batch = vec![vec![1.0], vec![1.0], vec![1.0]];
        let out = engine.evaluate_batch(&batch, &counted_sum(&calls));
        assert_eq!(out, vec![1.0, 1.0, 1.0]);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(engine.stats().cache_hits, 2);
        assert_eq!(engine.shared_cache().unwrap().len(), 1);
    }

    #[test]
    fn config_builders_compose() {
        let cfg = EngineConfig::default()
            .evaluator(crate::ParallelEvaluator::with_threads(2))
            .cache_capacity(64)
            .cache_grid(1e-6)
            .fault_policy(crate::FaultPolicy::tolerant(3))
            .inject_faults(crate::FaultPlan::seeded(9).panics(0.1));
        assert_eq!(cfg.evaluator, EvaluatorKind::ParallelWith(2));
        assert_eq!(cfg.cache.capacity, 64);
        assert_eq!(cfg.cache.grid, 1e-6);
        assert_eq!(cfg.fault.retry.max_attempts, 3);
        assert_eq!(cfg.inject.unwrap().panic_rate, 0.1);
    }

    #[test]
    fn try_path_matches_plain_path_without_faults() {
        let mut plain: ExecutionEngine<f64> =
            ExecutionEngine::new(EngineConfig::default().cache_capacity(8));
        let mut tried: ExecutionEngine<f64> =
            ExecutionEngine::new(EngineConfig::default().cache_capacity(8));
        let f = |genes: &[f64]| genes.iter().sum::<f64>();
        let batch = vec![vec![1.0], vec![2.0], vec![1.0]];
        let a = plain.evaluate_batch(&batch, &f);
        let b = tried.try_evaluate_batch(&batch, &f).unwrap();
        assert_eq!(a, b);
        assert_eq!(plain.stats().evaluations, tried.stats().evaluations);
        assert_eq!(plain.stats().cache_hits, tried.stats().cache_hits);
        assert_eq!(tried.stats().failures, 0);
    }

    #[test]
    fn cache_never_stores_tainted_results() {
        let calls = AtomicU64::new(0);
        // Candidate [1.0] always evaluates to NaN; no quarantine policy,
        // so it flows through as a value — but must never be cached.
        let mut engine: ExecutionEngine<f64> =
            ExecutionEngine::new(EngineConfig::default().cache_capacity(16));
        let f = |genes: &[f64]| {
            calls.fetch_add(1, Ordering::SeqCst);
            if genes[0] == 1.0 {
                f64::NAN
            } else {
                genes[0]
            }
        };
        let batch = vec![vec![1.0], vec![2.0]];
        engine.try_evaluate_batch(&batch, &f).unwrap();
        engine.try_evaluate_batch(&batch, &f).unwrap();
        // [2.0] cached after the first batch; [1.0] re-evaluated.
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn injected_faults_recover_and_are_counted() {
        let plan = crate::FaultPlan::seeded(13).panics(0.2).nonfinite(0.2);
        let cfg = EngineConfig::default()
            .fault_policy(crate::FaultPolicy::tolerant(3))
            .inject_faults(plan);
        let mut engine: ExecutionEngine<f64> = ExecutionEngine::new(cfg);
        let mut clean: ExecutionEngine<f64> = ExecutionEngine::new(EngineConfig::default());
        let f = |genes: &[f64]| genes[0] * 2.0;
        let batch: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let faulty = engine.try_evaluate_batch(&batch, &f).unwrap();
        let reference = clean.try_evaluate_batch(&batch, &f).unwrap();
        assert_eq!(faulty, reference);
        let s = engine.stats();
        assert!(s.failures > 0, "plan should schedule some faults");
        assert_eq!(s.failures, s.injected_panics + s.injected_nonfinite);
        assert_eq!(s.retries, s.failures);
        assert_eq!(s.recovered, s.failures);
        assert_eq!(s.quarantined, 0);
    }

    #[test]
    fn fault_events_record_resolved_episodes_in_batch_order() {
        let plan = crate::FaultPlan::seeded(13).panics(0.2).nonfinite(0.2);
        let cfg = EngineConfig::default()
            .fault_policy(crate::FaultPolicy::tolerant(3))
            .inject_faults(plan);
        let mut engine: ExecutionEngine<f64> = ExecutionEngine::new(cfg);
        let f = |genes: &[f64]| genes[0] * 2.0;
        let batch: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        engine.try_evaluate_batch(&batch, &f).unwrap();
        let events = engine.take_fault_events();
        assert_eq!(events.len() as u64, engine.stats().recovered);
        assert!(!events.is_empty(), "plan should schedule some faults");
        for w in events.windows(2) {
            assert!(w[0].index <= w[1].index, "events must be in batch order");
        }
        for e in &events {
            assert_eq!(e.resolution, crate::FaultResolution::Recovered);
            assert!(e.failures > 0);
        }
        // Drained: a second take returns nothing.
        assert!(engine.take_fault_events().is_empty());
    }

    #[test]
    fn abort_policy_surfaces_typed_failure() {
        let plan = crate::FaultPlan::seeded(1).panics(1.0);
        let cfg = EngineConfig::default().inject_faults(plan);
        let mut engine: ExecutionEngine<f64> = ExecutionEngine::new(cfg);
        let err = engine
            .try_evaluate_batch(&[vec![0.5]], &|g: &[f64]| g[0])
            .unwrap_err();
        assert_eq!(err.index, 0);
        assert_eq!(err.attempts, 1);
        assert_eq!(err.kind, crate::FaultKind::Panic);
    }

    #[test]
    fn batch_kernel_is_used_for_serial_misses() {
        let kernel_calls = AtomicU64::new(0);
        let scalar_calls = AtomicU64::new(0);
        let mut engine: ExecutionEngine<f64> =
            ExecutionEngine::new(EngineConfig::default().cache_capacity(16));
        let eval = |genes: &[f64]| {
            scalar_calls.fetch_add(1, Ordering::SeqCst);
            genes[0] * 2.0
        };
        let kernel = |chunk: &[Vec<f64>]| {
            kernel_calls.fetch_add(1, Ordering::SeqCst);
            chunk.iter().map(|g| g[0] * 2.0).collect::<Vec<f64>>()
        };
        let batch = vec![vec![1.0], vec![2.0], vec![1.0]];
        let out = engine
            .try_evaluate_batch_with(&batch, &eval, &kernel)
            .unwrap();
        assert_eq!(out, vec![2.0, 4.0, 2.0]);
        assert_eq!(kernel_calls.load(Ordering::SeqCst), 1);
        assert_eq!(scalar_calls.load(Ordering::SeqCst), 0);
        assert_eq!(engine.stats().evaluations, 2);
        assert_eq!(engine.stats().cache_hits, 1);
    }

    #[test]
    fn batch_kernel_panic_demotes_to_scalar_path() {
        let mut engine: ExecutionEngine<f64> = ExecutionEngine::new(EngineConfig::default());
        let eval = |genes: &[f64]| genes[0] + 1.0;
        let kernel = |_chunk: &[Vec<f64>]| -> Vec<f64> { panic!("kernel exploded") };
        let batch = vec![vec![1.0], vec![2.0]];
        let out = engine
            .try_evaluate_batch_with(&batch, &eval, &kernel)
            .unwrap();
        assert_eq!(out, vec![2.0, 3.0]);
        // The scalar fallback succeeds on the first attempt, so the
        // kernel panic leaves no failure accounting behind.
        assert_eq!(engine.stats().failures, 0);
    }

    #[test]
    fn mis_sized_kernel_demotes_to_scalar_path() {
        let mut engine: ExecutionEngine<f64> = ExecutionEngine::new(EngineConfig::default());
        let eval = |genes: &[f64]| genes[0] + 1.0;
        let kernel = |_chunk: &[Vec<f64>]| -> Vec<f64> { vec![0.0] };
        let batch = vec![vec![1.0], vec![2.0]];
        let out = engine
            .try_evaluate_batch_with(&batch, &eval, &kernel)
            .unwrap();
        assert_eq!(out, vec![2.0, 3.0]);
    }

    #[test]
    fn kernel_and_injection_compose_bit_identically() {
        let plan = crate::FaultPlan::seeded(13).panics(0.2).nonfinite(0.2);
        let cfg = EngineConfig::default()
            .fault_policy(crate::FaultPolicy::tolerant(3))
            .inject_faults(plan);
        let mut with_kernel: ExecutionEngine<f64> = ExecutionEngine::new(cfg.clone());
        let mut scalar: ExecutionEngine<f64> = ExecutionEngine::new(cfg);
        let eval = |genes: &[f64]| genes[0] * 2.0;
        let kernel = |chunk: &[Vec<f64>]| chunk.iter().map(|g| g[0] * 2.0).collect::<Vec<f64>>();
        let batch: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let a = with_kernel
            .try_evaluate_batch_with(&batch, &eval, &kernel)
            .unwrap();
        let b = scalar.try_evaluate_batch(&batch, &eval).unwrap();
        assert_eq!(a, b);
        let mut sa = with_kernel.stats().clone();
        let mut sb = scalar.stats().clone();
        sa.eval_time = std::time::Duration::ZERO;
        sb.eval_time = std::time::Duration::ZERO;
        sa.backoff_time = sb.backoff_time;
        assert_eq!(sa, sb);
        assert_eq!(
            with_kernel.take_fault_events(),
            scalar.take_fault_events(),
            "fault episodes must land on the same candidates"
        );
    }

    #[test]
    fn screen_answers_obvious_losers_and_never_caches_them() {
        let calls = AtomicU64::new(0);
        let mut engine: ExecutionEngine<f64> =
            ExecutionEngine::new(EngineConfig::default().cache_capacity(16));
        engine.attach_screen(crate::SurrogateScreen::new("negatives", |g: &[f64]| {
            (g[0] < 0.0).then_some(-999.0)
        }));
        let eval = counted_sum(&calls);
        let batch = vec![vec![-1.0], vec![2.0], vec![3.0]];
        let out = engine.try_evaluate_batch(&batch, &eval).unwrap();
        assert_eq!(out, vec![-999.0, 2.0, 3.0]);
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        let s = engine.stats();
        assert_eq!(s.screened, 1);
        assert_eq!(s.candidates, s.evaluations + s.cache_hits + s.screened);
        // Screened placeholders are never cached: the same loser is
        // screened again (not served as a hit) on the next batch.
        let out2 = engine.try_evaluate_batch(&batch, &eval).unwrap();
        assert_eq!(out2, vec![-999.0, 2.0, 3.0]);
        let s = engine.stats();
        assert_eq!(s.screened, 2);
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.candidates, s.evaluations + s.cache_hits + s.screened);
    }

    #[test]
    fn never_screen_is_a_no_op() {
        let mut screened: ExecutionEngine<f64> =
            ExecutionEngine::new(EngineConfig::default().cache_capacity(8));
        screened.attach_screen(crate::SurrogateScreen::new("never", |_: &[f64]| None));
        let mut plain: ExecutionEngine<f64> =
            ExecutionEngine::new(EngineConfig::default().cache_capacity(8));
        let eval = |genes: &[f64]| genes[0] * 3.0;
        let batch: Vec<Vec<f64>> = (0..10).map(|i| vec![(i % 4) as f64]).collect();
        assert_eq!(
            screened.try_evaluate_batch(&batch, &eval).unwrap(),
            plain.try_evaluate_batch(&batch, &eval).unwrap()
        );
        assert_eq!(screened.stats().screened, 0);
        assert_eq!(screened.stats().evaluations, plain.stats().evaluations);
    }

    #[test]
    fn canonicalizer_collapses_equivalent_genes_to_one_entry() {
        fn snap(genes: &[f64]) -> Vec<f64> {
            genes.iter().map(|g| g.round()).collect()
        }
        let calls = AtomicU64::new(0);
        // The model itself also rounds, so canonically-equal genes have
        // bit-identical values and may share a cache entry.
        let eval = |genes: &[f64]| {
            calls.fetch_add(1, Ordering::SeqCst);
            genes[0].round() * 10.0
        };
        let mut engine: ExecutionEngine<f64> =
            ExecutionEngine::new(EngineConfig::default().cache_capacity(16));
        engine.set_cache_canonicalizer(snap);
        let batch = vec![vec![1.02], vec![0.97], vec![2.2]];
        let out = engine.evaluate_batch(&batch, &eval);
        assert_eq!(out, vec![10.0, 10.0, 20.0]);
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        assert_eq!(engine.stats().cache_hits, 1);
        assert!(engine.cache_canonicalizer().is_some());
    }

    #[test]
    fn try_path_serial_parallel_stats_match_under_injection() {
        let plan = crate::FaultPlan::seeded(21).panics(0.15).nonfinite(0.15);
        let base = EngineConfig::default()
            .fault_policy(crate::FaultPolicy::tolerant(4))
            .inject_faults(plan);
        let mut serial: ExecutionEngine<f64> = ExecutionEngine::new(base.clone());
        let mut parallel: ExecutionEngine<f64> =
            ExecutionEngine::new(base.evaluator(EvaluatorKind::ParallelWith(4)));
        let f = |genes: &[f64]| genes[0] + 1.0;
        let batch: Vec<Vec<f64>> = (0..48).map(|i| vec![i as f64 * 0.7]).collect();
        let a = serial.try_evaluate_batch(&batch, &f).unwrap();
        let b = parallel.try_evaluate_batch(&batch, &f).unwrap();
        assert_eq!(a, b);
        assert_eq!(serial.stats().failures, parallel.stats().failures);
        assert_eq!(serial.stats().retries, parallel.stats().retries);
        assert_eq!(serial.stats().recovered, parallel.stats().recovered);
        assert_eq!(
            serial.stats().injected_panics,
            parallel.stats().injected_panics
        );
    }
}
