//! Quantized-key LRU memoization of evaluation results.

use std::collections::HashMap;

/// Configuration of the memoization cache.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Maximum number of retained entries; `0` disables caching.
    pub capacity: usize,
    /// Quantization grid: gene values are divided by this and rounded to
    /// the nearest integer before hashing, so any two vectors within half
    /// a grid step per gene share a cache entry.
    pub grid: f64,
}

impl CacheConfig {
    /// Default quantization grid, fine enough that distinct candidates in
    /// the unit-ish design spaces of this workspace never collide.
    pub const DEFAULT_GRID: f64 = 1e-9;

    /// A cache holding at most `capacity` entries at the default grid.
    pub fn with_capacity(capacity: usize) -> Self {
        CacheConfig {
            capacity,
            grid: Self::DEFAULT_GRID,
        }
    }

    /// Sets the quantization grid (must be positive and finite).
    pub fn grid(mut self, grid: f64) -> Self {
        assert!(grid.is_finite() && grid > 0.0, "cache grid must be > 0");
        self.grid = grid;
        self
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::with_capacity(0)
    }
}

/// An LRU map from quantized gene vectors to evaluation results.
///
/// Recency is tracked with an intrusive doubly-linked list over a slab of
/// entries, so `get` and `insert` are O(1) hash operations plus pointer
/// updates — no shifting or reallocation on access.
#[derive(Debug)]
pub struct MemoCache<T> {
    config: CacheConfig,
    index: HashMap<Vec<i64>, usize>,
    entries: Vec<Entry<T>>,
    /// Most recently used entry, or `usize::MAX` when empty.
    head: usize,
    /// Least recently used entry, or `usize::MAX` when empty.
    tail: usize,
}

#[derive(Debug)]
struct Entry<T> {
    key: Vec<i64>,
    value: T,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl<T: Clone> MemoCache<T> {
    /// An empty cache with the given configuration.
    pub fn new(config: CacheConfig) -> Self {
        let cap = config.capacity;
        MemoCache {
            config,
            index: HashMap::with_capacity(cap.min(1 << 20)),
            entries: Vec::with_capacity(cap.min(1 << 20)),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maps a gene vector onto its quantized cache key.
    ///
    /// Non-finite genes saturate (`NaN` maps to 0 via the `as` cast),
    /// which is harmless: such candidates are rare and merely share an
    /// entry.
    pub fn key_of(&self, genes: &[f64]) -> Vec<i64> {
        genes
            .iter()
            .map(|&x| (x / self.config.grid).round() as i64)
            .collect()
    }

    /// Looks up a previously stored result and marks it most recently
    /// used.
    pub fn get(&mut self, key: &[i64]) -> Option<T> {
        let idx = *self.index.get(key)?;
        self.touch(idx);
        Some(self.entries[idx].value.clone())
    }

    /// Stores a result, evicting the least recently used entry when full.
    ///
    /// Inserting under an existing key refreshes its recency and replaces
    /// the value.
    pub fn insert(&mut self, key: Vec<i64>, value: T) {
        if self.config.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.index.get(&key) {
            self.entries[idx].value = value;
            self.touch(idx);
            return;
        }
        let idx = if self.entries.len() >= self.config.capacity {
            // Reuse the LRU slot: unlink it and drop its index entry.
            let idx = self.tail;
            self.unlink(idx);
            let old_key = std::mem::replace(&mut self.entries[idx].key, key.clone());
            self.index.remove(&old_key);
            self.entries[idx].value = value;
            idx
        } else {
            self.entries.push(Entry {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.entries.len() - 1
        };
        self.index.insert(key, idx);
        self.push_front(idx);
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.entries[idx].prev, self.entries[idx].next);
        if prev != NIL {
            self.entries[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.entries[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.entries[idx].prev = NIL;
        self.entries[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.entries[idx].prev = NIL;
        self.entries[idx].next = self.head;
        if self.head != NIL {
            self.entries[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn touch(&mut self, idx: usize) {
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(capacity: usize) -> MemoCache<u32> {
        MemoCache::new(CacheConfig::with_capacity(capacity))
    }

    #[test]
    fn stores_and_retrieves() {
        let mut c = cache(4);
        let k = c.key_of(&[1.0, 2.0]);
        assert!(c.get(&k).is_none());
        c.insert(k.clone(), 42);
        assert_eq!(c.get(&k), Some(42));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn quantization_merges_nearby_vectors() {
        let mut c = MemoCache::new(CacheConfig::with_capacity(4).grid(0.1));
        let a = c.key_of(&[1.00, 2.00]);
        let b = c.key_of(&[1.04, 1.96]); // within half a grid step per gene
        let d = c.key_of(&[1.10, 2.00]); // a full grid step away
        assert_eq!(a, b);
        assert_ne!(a, d);
        c.insert(a, 7);
        assert_eq!(c.get(&b), Some(7));
        assert!(c.get(&d).is_none());
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = cache(2);
        let (k1, k2, k3) = (vec![1], vec![2], vec![3]);
        c.insert(k1.clone(), 1);
        c.insert(k2.clone(), 2);
        // Touch k1 so k2 becomes the LRU entry.
        assert_eq!(c.get(&k1), Some(1));
        c.insert(k3.clone(), 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&k1), Some(1));
        assert!(c.get(&k2).is_none(), "k2 should have been evicted");
        assert_eq!(c.get(&k3), Some(3));
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut c = cache(2);
        c.insert(vec![1], 1);
        c.insert(vec![2], 2);
        c.insert(vec![1], 10); // refresh: now [2] is LRU
        c.insert(vec![3], 3);
        assert_eq!(c.get(&[1][..]), Some(10));
        assert!(c.get(&[2][..]).is_none());
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = cache(0);
        c.insert(vec![1], 1);
        assert!(c.is_empty());
        assert!(c.get(&[1][..]).is_none());
    }

    #[test]
    fn capacity_one_churns_correctly() {
        let mut c = cache(1);
        for i in 0..10i64 {
            c.insert(vec![i], i as u32);
            assert_eq!(c.len(), 1);
            assert_eq!(c.get(&[i][..]), Some(i as u32));
        }
    }

    #[test]
    fn nonfinite_genes_do_not_panic() {
        let c: MemoCache<u32> = cache(2);
        let k = c.key_of(&[f64::NAN, f64::INFINITY, f64::NEG_INFINITY]);
        assert_eq!(k.len(), 3);
        assert_eq!(k[0], 0);
        assert_eq!(k[1], i64::MAX);
        assert_eq!(k[2], i64::MIN);
    }

    #[test]
    #[should_panic(expected = "grid must be > 0")]
    fn rejects_nonpositive_grid() {
        let _ = CacheConfig::with_capacity(1).grid(0.0);
    }
}
