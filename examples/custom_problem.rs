//! Plug your own multi-objective problem into SACGA: the algorithms are
//! generic over [`moea::Problem`], so anything with box-bounded real
//! variables, minimized objectives and violation-style constraints works.
//!
//! This example defines a small constrained welded-beam-style problem from
//! scratch and explores it with SACGA and NSGA-II. Run with:
//!
//! ```text
//! cargo run --release --example custom_problem
//! ```

use analog_dse::moea::evaluation::{Evaluation, ViolationBuilder};
use analog_dse::moea::nsga2::{Nsga2, Nsga2Config};
use analog_dse::moea::problem::{Bounds, Problem};
use analog_dse::moea::OptimizeError;
use analog_dse::sacga::sacga::{Sacga, SacgaConfig};

/// A two-bar truss: minimize structural volume and stress subject to a
/// stress cap on each bar (a classic small constrained biobjective).
///
/// Variables: `x1, x2` = cross-section areas (1e-5..1e-2 m²),
/// `y` = joint height (1..3 m).
struct TwoBarTruss {
    bounds: Bounds,
}

impl TwoBarTruss {
    fn new() -> Result<Self, OptimizeError> {
        Ok(TwoBarTruss {
            bounds: Bounds::new(vec![1e-5, 1e-5, 1.0], vec![1e-2, 1e-2, 3.0])?,
        })
    }
}

impl Problem for TwoBarTruss {
    fn name(&self) -> &str {
        "two-bar-truss"
    }
    fn bounds(&self) -> &Bounds {
        &self.bounds
    }
    fn num_objectives(&self) -> usize {
        2
    }
    fn num_constraints(&self) -> usize {
        2
    }
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        let (a1, a2, y) = (x[0], x[1], x[2]);
        let volume = a1 * (16.0 + y * y).sqrt() + a2 * (1.0 + y * y).sqrt();
        let sigma1 = 20.0 * (16.0 + y * y).sqrt() / (17.0 * y * a1);
        let sigma2 = 80.0 * (1.0 + y * y).sqrt() / (17.0 * y * a2);
        let stress = sigma1.max(sigma2);
        let mut v = ViolationBuilder::new();
        v.at_most(sigma1, 1e5);
        v.at_most(sigma2, 1e5);
        Evaluation::new(vec![volume, stress], v.finish())
    }
}

fn main() -> Result<(), OptimizeError> {
    let problem = TwoBarTruss::new()?;

    let nsga2 = Nsga2::new(
        &problem,
        Nsga2Config::builder()
            .population_size(60)
            .generations(120)
            .build()?,
    )
    .run_seeded(3)?;

    // Partition along the volume objective; range derived from the
    // initial population because no a-priori range is known.
    let sacga = Sacga::new(
        &problem,
        SacgaConfig::builder()
            .population_size(60)
            .generations(120)
            .partitions(6)
            .slice_objective(0)
            .build()?,
    )
    .run_seeded(3)?;

    for (name, front) in [("NSGA-II", &nsga2.front), ("SACGA", &sacga.front)] {
        let mut rows: Vec<(f64, f64)> = front
            .iter()
            .map(|m| (m.objective(0), m.objective(1)))
            .collect();
        rows.sort_by(|a, b| a.0.total_cmp(&b.0));
        println!("{name}: {} non-dominated feasible designs", rows.len());
        for (v, s) in rows.iter().step_by((rows.len() / 8).max(1)) {
            println!("  volume {v:9.5} m^3   stress {s:10.1} Pa");
        }
    }
    Ok(())
}
