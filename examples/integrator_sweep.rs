//! Inspect the circuit substrate directly: sweep the reference op-amp
//! sizing across loads and process corners and print the full performance
//! report — no GA involved.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example integrator_sweep
//! ```

use analog_dse::circuits::integrator::{analyze, ClockContext};
use analog_dse::circuits::process::{Corner, Process};
use analog_dse::circuits::yield_est;
use analog_dse::circuits::{DesignVector, Spec};

fn main() {
    let dv = DesignVector::reference();
    let clock = ClockContext::standard();
    let nominal = Process::nominal();

    println!("reference two-stage op-amp, swept across load capacitance (TT):\n");
    println!(
        "{:>8} {:>9} {:>9} {:>9} {:>8} {:>8} {:>9} {:>9}",
        "CL (pF)", "ST (ns)", "SE", "DR (dB)", "OR (V)", "P (mW)", "p2/wc", "zeta"
    );
    for cl_pf in [0.1, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0] {
        let r = analyze(&dv.with_cl(cl_pf * 1e-12), &nominal, &clock);
        println!(
            "{:8.1} {:9.2} {:9.2e} {:9.1} {:8.2} {:8.3} {:9.2} {:9.2}",
            cl_pf,
            r.settling_time * 1e9,
            r.settling_error,
            r.dynamic_range_db,
            r.output_range,
            r.power * 1e3,
            r.p2 / r.omega_c,
            r.zeta
        );
    }

    println!("\nsame design at 1 pF across manufacturing corners:\n");
    println!(
        "{:>8} {:>9} {:>9} {:>9} {:>8} {:>9} {:>10}",
        "corner", "ST (ns)", "SE", "DR (dB)", "OR (V)", "A0 (dB)", "margin (V)"
    );
    for corner in Corner::ALL {
        let process = nominal.at_corner(corner);
        let r = analyze(&dv.with_cl(1e-12), &process, &clock);
        println!(
            "{:>8} {:9.2} {:9.2e} {:9.1} {:8.2} {:9.1} {:10.3}",
            corner.name(),
            r.settling_time * 1e9,
            r.settling_error,
            r.dynamic_range_db,
            r.output_range,
            r.opamp.a0_db(),
            r.opamp.sat_margin
        );
    }

    let spec = Spec::featured();
    let (rob, detail) = yield_est::robustness_detailed(&dv.with_cl(1e-12), &nominal, &clock, &spec);
    println!("\nrobustness against '{}' at 1 pF: {rob:.2}", spec.name);
    for (sample, ok) in detail {
        println!(
            "  {} dvt_n={:+.3} dvt_p={:+.3} dkp={:+.2}  ->  {}",
            sample.corner,
            sample.dvt_n,
            sample.dvt_p,
            sample.dkp,
            if ok { "pass" } else { "FAIL" }
        );
    }
}
