//! Quickstart: size the CDS switched-capacitor integrator for a diverse
//! power-vs-load design surface with SACGA.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use analog_dse::circuits::{DrivableLoadProblem, Spec};
use analog_dse::moea::OptimizeError;
use analog_dse::sacga::sacga::{Sacga, SacgaConfig};

fn main() -> Result<(), OptimizeError> {
    // The paper's featured specification: DR >= 96 dB, OR >= 1.4 V,
    // ST <= 0.24 us, SE <= 7e-4, robustness >= 0.85.
    let problem = DrivableLoadProblem::new(Spec::featured());

    // An 8-partition SACGA over the 0-5 pF load axis. Small budget so the
    // example finishes in ~20 s; the bench harness runs the full budgets.
    let (lo, hi) = DrivableLoadProblem::slice_range();
    let config = SacgaConfig::builder()
        .population_size(60)
        .generations(150)
        .partitions(8)
        .phase1_max(40)
        .slice_range(lo, hi)
        .build()?;

    println!("running SACGA (60 x 150) on the integrator sizing problem...");
    let result = Sacga::new(&problem, config).run_seeded(42)?;

    println!(
        "phase I took {} generations; {} evaluations total",
        result.gen_t, result.evaluations
    );
    println!("Pareto front ({} designs):", result.front.len());
    let mut rows: Vec<(f64, f64)> = result
        .front
        .iter()
        .map(|m| {
            let (cl_pf, p_w) = DrivableLoadProblem::to_paper_axes(m.objectives());
            (cl_pf, p_w * 1e3)
        })
        .collect();
    rows.sort_by(|a, b| a.0.total_cmp(&b.0));
    println!("{:>12} {:>12}", "load (pF)", "power (mW)");
    for (cl, p) in &rows {
        println!("{cl:12.2} {p:12.3}");
    }
    let hv = DrivableLoadProblem::paper_hypervolume(&result.front);
    println!("\npaper hypervolume (0.1 mW * pF, lower is better): {hv:.2}");
    Ok(())
}
