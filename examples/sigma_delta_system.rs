//! The paper's motivating flow, end to end: explore the integrator's
//! power-vs-drivable-load design surface with SACGA, then use that
//! surface to make *subsystem-level* decisions — assemble a fourth-order
//! Σ∆ modulator from front designs and report the converter-level SNR and
//! total power.
//!
//! "The knowledge of optimal design space boundaries of component
//! circuits can be extremely useful in making good subsystem-level design
//! decisions" — Sec. 1 of the paper.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example sigma_delta_system
//! ```

use analog_dse::circuits::integrator::analyze;
use analog_dse::circuits::sigma_delta::{coherent_tone, measure_snr, Modulator, StageModel};
use analog_dse::circuits::sizing::DesignVector;
use analog_dse::circuits::{DrivableLoadProblem, Spec};
use analog_dse::moea::{Individual, OptimizeError};
use analog_dse::sacga::sacga::{Sacga, SacgaConfig};

const OSR: usize = 128;
const SAMPLES: usize = 16384;

/// Converter-level figures for one choice of front design per stage.
fn evaluate_assembly(problem: &DrivableLoadProblem, picks: &[&Individual; 4]) -> (f64, f64) {
    let mut stages = Vec::with_capacity(4);
    let mut total_power = 0.0;
    for ind in picks {
        let dv = DesignVector::from_sizing_genes(&ind.genes).quantize();
        let (cl, _) = problem
            .drivable_load(&dv)
            .expect("front designs are drivable");
        let report = analyze(&dv.with_cl(cl), problem.process(), problem.clock());
        total_power += report.power;
        stages.push(StageModel::from_report(&report, 1.0, OSR as f64));
    }
    let modulator = Modulator::fourth_order([stages[0], stages[1], stages[2], stages[3]]);
    let tone = coherent_tone(SAMPLES, 5, 0.3);
    let bits = modulator.run(&tone, 11);
    let snr = measure_snr(&bits, 5, OSR).snr_db;
    (snr, total_power)
}

fn main() -> Result<(), OptimizeError> {
    // 1. Explore the design surface (small budget; the bench harness runs
    //    the full-size experiments).
    let problem = DrivableLoadProblem::new(Spec::featured());
    let (lo, hi) = DrivableLoadProblem::slice_range();
    let config = SacgaConfig::builder()
        .population_size(60)
        .generations(150)
        .partitions(8)
        .phase1_max(40)
        .slice_range(lo, hi)
        .build()?;
    println!("exploring the design surface (SACGA 60 x 150)...");
    let result = Sacga::new(&problem, config).run_seeded(42)?;
    let mut front = result.front.clone();
    front.sort_by(|a, b| a.objective(0).total_cmp(&b.objective(0))); // by -CL: big loads first
    println!("front: {} designs", front.len());
    if front.len() < 4 {
        println!("front too small for a 4-stage assembly; rerun with a larger budget");
        return Ok(());
    }

    // 2. Subsystem-level decision: stage 1 of a Σ∆ modulator needs the
    //    most drive (it sees the next stage's sampling network and
    //    dominates noise); later stages can be progressively cheaper.
    //    Compare two assemblies from the same surface.
    let biggest = &front[0];
    let cheapest = front.last().expect("non-empty front");
    let mid = &front[front.len() / 2];

    let tapered: [&Individual; 4] = [biggest, mid, cheapest, cheapest];
    let all_big: [&Individual; 4] = [biggest, biggest, biggest, biggest];
    let all_cheap: [&Individual; 4] = [cheapest, cheapest, cheapest, cheapest];

    println!("\nassembling fourth-order modulators from the surface (OSR {OSR}):\n");
    println!("{:<34} {:>10} {:>12}", "assembly", "SNR (dB)", "power (mW)");
    for (name, picks) in [
        ("all biggest-drive designs", &all_big),
        ("tapered (big, mid, cheap, cheap)", &tapered),
        ("all cheapest designs", &all_cheap),
    ] {
        let (snr, power) = evaluate_assembly(&problem, picks);
        println!("{name:<34} {snr:>10.1} {:>12.3}", power * 1e3);
    }
    println!(
        "\nthis is the subsystem-level decision the paper's design-surface\n\
         methodology enables: every design on the surface already meets the\n\
         integrator spec, so the converter is quantization-limited and the\n\
         assembly can be chosen almost purely on power — here a 5x saving\n\
         over the conservative all-biggest choice at equal SNR."
    );
    Ok(())
}
