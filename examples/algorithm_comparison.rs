//! Compare the three algorithms of the paper — TPG (NSGA-II), SACGA and
//! MESACGA — on the integrator problem at equal evaluation budgets, and
//! print front quality metrics.
//!
//! A scaled-down version of the paper's Fig. 8 experiment (the full-budget
//! variant lives in the `dse-bench` harness). Run with:
//!
//! ```text
//! cargo run --release --example algorithm_comparison
//! ```

use analog_dse::circuits::{DrivableLoadProblem, Spec};
use analog_dse::moea::metrics::{bin_occupancy, spread};
use analog_dse::moea::nsga2::{Nsga2, Nsga2Config};
use analog_dse::moea::{Individual, OptimizeError};
use analog_dse::sacga::mesacga::{Mesacga, MesacgaConfig, PhaseSpec};
use analog_dse::sacga::sacga::{Sacga, SacgaConfig};

const POP: usize = 60;
const GENS: usize = 220;
const SEED: u64 = 42;

fn describe(name: &str, front: &[Individual]) {
    let pts: Vec<Vec<f64>> = front
        .iter()
        .map(|m| {
            let (cl, p) = DrivableLoadProblem::to_paper_axes(m.objectives());
            vec![cl, p * 1e3]
        })
        .collect();
    let hv = DrivableLoadProblem::paper_hypervolume(front);
    let occupancy = if pts.is_empty() {
        0.0
    } else {
        bin_occupancy(&pts, 0, 0.0, 5.0, 10)
    };
    println!(
        "{name:>8}: {:3} designs | hypervolume {hv:6.2} | load-axis occupancy {occupancy:.2} | spread {:.2}",
        front.len(),
        spread(&pts),
    );
}

fn main() -> Result<(), OptimizeError> {
    let problem = DrivableLoadProblem::new(Spec::featured());
    let (lo, hi) = DrivableLoadProblem::slice_range();

    println!("integrator sizing, {POP} individuals x {GENS} generations, seed {SEED}\n");

    // The paper's TPG baseline: the same engine with a single partition
    // (pure global competition, rank-based selection).
    let only_global = Sacga::new(
        &problem,
        SacgaConfig::builder()
            .population_size(POP)
            .generations(GENS)
            .partitions(1)
            .phase1_max(60)
            .slice_range(lo, hi)
            .build()?,
    )
    .run_seeded(SEED)?;
    describe("TPG", &only_global.front);

    // Textbook NSGA-II, the modern reference baseline.
    let nsga2 = Nsga2::new(
        &problem,
        Nsga2Config::builder()
            .population_size(POP)
            .generations(GENS)
            .build()?,
    )
    .run_seeded(SEED)?;
    describe("NSGA-II", &nsga2.front);

    let sacga = Sacga::new(
        &problem,
        SacgaConfig::builder()
            .population_size(POP)
            .generations(GENS)
            .partitions(8)
            .phase1_max(60)
            .slice_range(lo, hi)
            .build()?,
    )
    .run_seeded(SEED)?;
    describe("SACGA", &sacga.front);

    let span = (GENS - 60) / 7;
    let mesacga = Mesacga::new(
        &problem,
        MesacgaConfig::builder()
            .population_size(POP)
            .phase1_max(60)
            .phases(
                [20, 13, 8, 5, 3, 2, 1]
                    .into_iter()
                    .map(|m| PhaseSpec::new(m, span))
                    .collect(),
            )
            .slice_range(lo, hi)
            .build()?,
    )
    .run_seeded(SEED)?;
    describe("MESACGA", &mesacga.front);

    println!(
        "\n(lower hypervolume and higher occupancy are better; the paper's\n\
         trend is MESACGA >= SACGA >= TPG for long runs — on this substrate\n\
         the partitioned algorithms reliably out-cover the rank-based\n\
         Only-Global baseline, while textbook NSGA-II holds its own through\n\
         crowding; see EXPERIMENTS.md)"
    );
    Ok(())
}
