//! Validate the analytical settling model against transient simulation
//! and print the op-amp's Bode summary — the circuit substrate's two
//! dynamic views, no GA involved.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example settling_and_bode
//! ```

use analog_dse::circuits::frequency;
use analog_dse::circuits::integrator::{analyze, ClockContext};
use analog_dse::circuits::process::Process;
use analog_dse::circuits::transient::simulate_settling;
use analog_dse::circuits::DesignVector;

fn main() {
    let clock = ClockContext::standard();
    let process = Process::nominal();
    let dv = DesignVector::reference();

    println!("reference design: analytical vs simulated settling\n");
    println!(
        "{:>8} {:>14} {:>14} {:>8} {:>10}",
        "CL (pF)", "ST formula", "ST simulated", "ratio", "overshoot"
    );
    for cl_pf in [0.2, 0.5, 1.0, 2.0, 3.5, 5.0] {
        let report = analyze(&dv.with_cl(cl_pf * 1e-12), &process, &clock);
        let sim = simulate_settling(&report, clock.settle_tolerance, 4e-6)
            .expect("reference design is biased");
        println!(
            "{cl_pf:8.1} {:11.1} ns {:11.1} ns {:8.2} {:10.3}",
            report.settling_time * 1e9,
            sim.settling_time * 1e9,
            sim.settling_time / report.settling_time,
            sim.overshoot
        );
    }

    let report = analyze(&dv.with_cl(1e-12), &process, &clock);
    let resp = frequency::sweep(&report, 10.0, 1e10, 46);
    println!("\nopen-loop Bode summary at 1 pF:");
    println!(
        "  DC gain {:.1} dB | unity gain {:.1} MHz | loop phase margin {:.1} deg",
        report.opamp.a0_db(),
        resp.unity_gain_hz / 1e6,
        resp.phase_margin_deg
    );
    println!("\n{:>12} {:>10} {:>10}", "f (Hz)", "mag (dB)", "phase");
    for p in resp.points.iter().step_by(5) {
        println!(
            "{:12.0} {:10.1} {:10.1}",
            p.frequency, p.magnitude_db, p.phase_deg
        );
    }
}
